"""Command-line interface: run the paper's algorithms on generated graphs.

Examples
--------
::

    python -m repro.cli apsp --n 24 --p 0.5 --weighted
    python -m repro.cli tradeoff --n 28 --eps 0 0.5 1.0
    python -m repro.cli matching --left 8 --right 9
    python -m repro.cli cover --n 32 --k 2 --w 2
    python -m repro.cli decompose --n 48 --eps 0.5
    python -m repro.cli scenarios list
    python -m repro.cli scenarios run dense-gnp --json
    python -m repro.cli scenarios sweep --sizes 16 24 --json
    python -m repro.cli sweep --workers 4                 # persisted + resumable
    python -m repro.cli sweep --workers 4 --retries 2     # re-queue failed cells
    python -m repro.cli sweep --no-store                  # skip the artifact store
    python -m repro.cli sweep --no-oracle-store           # recompute baselines
    python -m repro.cli sweep --no-decomposition-store    # recompute snapshots
    python -m repro.cli sweep --list-runs
    python -m repro.cli sweep --compare <run-id> --against <run-id>
    python -m repro.cli store ls --family oracles         # cached baselines
    python -m repro.cli store warm --names dense-gnp      # graphs + baselines
    python -m repro.cli store warm --family decompositions  # pipeline inputs
    python -m repro.cli store gc --keep-last 50 --family graphs
    python -m repro.cli bench oracle-store                # BENCH_oracle_store.json
    python -m repro.cli bench decomposition-pipeline --smoke
    python -m repro.cli bench history                     # recorded perf trend
    python -m repro.cli bench report graph-store          # trajectory tables
    python -m repro.cli bench gate graph-store            # rolling regression gate
    python -m repro.cli bench gate --smoke                # gate self-test
    python -m repro.cli runs report <run-id>              # telemetry timeline
    python -m repro.cli runs watch <run-id>               # live sweep progress
    python -m repro.cli sweep --profile --cprofile        # round profiles + hot fns
    python -m repro.cli sweep --kernels                   # array-native round engines
    python -m repro.cli bench kernels --smoke             # kernel speedup gate
    python -m repro.cli profile ls                        # stored round profiles
    python -m repro.cli profile show complete apsp-tradeoff --size 16
    python -m repro.cli profile diff complete apsp-tradeoff --size 16 \
        --against-size 24                                 # compare two cells

Each command prints the exact result summary plus the measured message
and round costs; everything runs on the literal CONGEST simulator.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.baselines.apsp_direct import (
    apsp_direct_unweighted,
    apsp_direct_weighted,
)
from repro.baselines.reference import (
    maximum_matching_size,
    unweighted_apsp as ref_unweighted,
    weighted_apsp as ref_weighted,
)
from repro.core import (
    apsp_tradeoff,
    maximum_matching,
    neighborhood_cover_direct,
    weighted_apsp,
)
from repro.decomposition import (
    build_pruned_hierarchy,
    max_proper_subtree,
    verify_hierarchy,
)
from repro.graphs import gnp, random_bipartite, uniform_weights


def _cmd_apsp(args: argparse.Namespace) -> int:
    g = gnp(args.n, args.p, seed=args.seed)
    if args.weighted:
        g = uniform_weights(g, w_max=args.w_max, seed=args.seed)
        result = weighted_apsp(g, seed=args.seed)
        direct = apsp_direct_weighted(g, seed=args.seed)
        exact = result.dist == ref_weighted(g)
    else:
        result = apsp_tradeoff(g, 0.0, seed=args.seed)
        direct = apsp_direct_unweighted(g, seed=args.seed)
        exact = result.dist == ref_unweighted(g)
    rows = [
        ("message-optimal (paper)", result.metrics.messages,
         result.metrics.rounds),
        ("round-optimal baseline", direct.metrics.messages,
         direct.metrics.rounds),
    ]
    print(f"{g.name}: n={g.n} m={g.m}  exact={exact}")
    print(format_table(["algorithm", "messages", "rounds"], rows))
    return 0 if exact else 1


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    g = gnp(args.n, args.p, seed=args.seed)
    ref = ref_unweighted(g)
    rows = []
    ok = True
    for eps in args.eps:
        result = apsp_tradeoff(g, eps, seed=args.seed)
        exact = result.dist == ref
        ok = ok and exact
        rows.append((eps, result.regime, result.metrics.messages,
                     result.metrics.rounds, exact))
    print(f"{g.name}: n={g.n} m={g.m}")
    print(format_table(["eps", "regime", "messages", "rounds", "exact"],
                       rows))
    return 0 if ok else 1


def _cmd_matching(args: argparse.Namespace) -> int:
    g = random_bipartite(args.left, args.right, args.p, seed=args.seed)
    result = maximum_matching(g, seed=args.seed)
    optimal = maximum_matching_size(g)
    print(f"{g.name}: matching size {result.size} (optimal {optimal})")
    print(f"messages={result.metrics.messages} "
          f"rounds={result.metrics.rounds} s_bound={result.s_bound}")
    for u, v in sorted(result.matching):
        print(f"  {u} -- {v}")
    return 0 if result.size == optimal else 1


def _cmd_cover(args: argparse.Namespace) -> int:
    g = gnp(args.n, args.p, seed=args.seed)
    result = neighborhood_cover_direct(g, args.k, args.w, seed=args.seed)
    stats = result.cover.verify(g)
    print(f"{g.name}: ({args.k}, {args.w})-cover")
    print(format_table(["property", "value"], sorted(stats.items())))
    print(f"messages={result.metrics.messages} "
          f"broadcasts={result.metrics.broadcasts}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    g = gnp(args.n, args.p, seed=args.seed)
    h = build_pruned_hierarchy(g, args.eps, seed=args.seed)
    stats = verify_hierarchy(g, h)
    stats["max_proper_subtree"] = max_proper_subtree(g, h)
    print(f"{g.name}: pruned Baswana-Sen hierarchy, eps={args.eps} "
          f"(kappa={h.kappa})")
    print(format_table(["property", "value"], sorted(stats.items())))
    return 0


def _scenario_rows(records) -> List[tuple]:
    return [(r.scenario, r.algorithm, r.n, r.m,
             r.metrics["rounds"], r.metrics["messages"],
             "pass" if r.passed else "FAIL")
            for r in records]


_SCENARIO_HEADERS = ["scenario", "algorithm", "n", "m", "rounds",
                     "messages", "verdict"]


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import all_scenarios
    from repro.testing import run_scenario, summarize, sweep

    if args.action == "list":
        scenarios = all_scenarios()
        if args.json:
            print(json.dumps([s.as_dict() for s in scenarios], indent=2))
        else:
            rows = [(s.name, s.regime, ",".join(s.algorithms),
                     s.default_size, "/".join(str(x) for x in s.sizes))
                    for s in scenarios]
            print(format_table(
                ["name", "regime", "algorithms", "tier1-n", "sweep"], rows))
            print(f"\n{len(scenarios)} scenarios")
        return 0

    try:
        if args.action == "run":
            records = run_scenario(args.name, size=args.size,
                                   algorithm=args.algorithm, seed=args.seed)
        else:  # sweep
            records = sweep(args.names, sizes=args.sizes, seed=args.seed,
                            workers=args.workers, timeout=args.timeout)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        # A timed-out or crashed cell: operational failure, not usage.
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps([r.as_dict() for r in records], indent=2))
    else:
        print(format_table(_SCENARIO_HEADERS, _scenario_rows(records)))
        stats = summarize(records)
        print(f"\n{stats['passed']}/{stats['cells']} cells passed")
        for failure in stats["failures"]:
            print(f"  FAIL {failure}")
    return 0 if all(r.passed for r in records) else 1


def _print_comparison(comparison) -> None:
    print(f"compare {comparison.baseline_id} -> {comparison.current_id}: "
          f"{comparison.cells_compared} cells, "
          f"{len(comparison.regressions)} regression(s)")
    if comparison.deltas:
        print(format_table(
            ["severity", "kind", "scenario", "algorithm", "size", "seed",
             "detail"],
            [d.row() for d in comparison.deltas]))
    else:
        print("no differences")


def _cmd_sweep(args: argparse.Namespace) -> int:
    """The runner-backed sweep: persist / resume / list / compare."""
    from repro.runner import (
        RunStore,
        compare_runs,
        decomposition_cache,
        graph_cache,
        oracle_cache,
        run_sweep,
    )
    from repro.testing import summarize

    store = RunStore(args.runs_dir)

    if args.list_runs:
        rows = [(run.run_id, run.revision,
                 len(run.completed_keys()), len(run.planned_keys),
                 "complete" if run.is_complete() else "incomplete")
                for run in store.list_runs()]
        if args.json:
            print(json.dumps(
                [{"run": run_id, "revision": revision, "recorded": done,
                  "planned": planned, "state": state}
                 for run_id, revision, done, planned, state in rows],
                indent=2))
        else:
            print(format_table(
                ["run", "revision", "recorded", "planned", "state"], rows))
        return 0

    if args.against is not None and args.compare is None:
        print("error: --against requires --compare (diff two stored runs "
              "without executing anything)", file=sys.stderr)
        return 2

    try:
        # Resolve the baseline up front: a typo'd run id must fail fast,
        # not after a full sweep has executed.
        baseline = (store.open_run(args.compare)
                    if args.compare is not None else None)

        if baseline is not None and args.against is not None:
            # Pure diff of two stored runs, no execution.
            current = store.open_run(args.against)
            comparison = compare_runs(
                baseline.load_results(), current.load_results(),
                baseline_id=baseline.run_id, current_id=current.run_id,
                tolerance=args.tolerance)
            if args.json:
                print(json.dumps(comparison.as_dict(), indent=2))
            else:
                _print_comparison(comparison)
            return 0 if comparison.ok else 1

        if args.store:
            graph_store_dir = (args.store_dir if args.store_dir is not None
                               else str(pathlib.Path(args.runs_dir)
                                        / "store"))
        else:
            graph_store_dir = None
            graph_cache.configure_store(None)
        # The oracle and decomposition families share the store root;
        # --no-oracle-store / --no-decomposition-store (or --no-store)
        # disconnect one family / everything.
        if args.store and args.oracle_store:
            oracle_store_dir = graph_store_dir
        else:
            oracle_store_dir = None
            oracle_cache.configure_store(None)
        if args.store and args.decomposition_store:
            decomposition_store_dir = graph_store_dir
        else:
            decomposition_store_dir = None
            decomposition_cache.configure_store(None)
        # Profiling is strictly opt-in: with the flags absent, configure
        # the capture plane OFF explicitly so ambient REPRO_PROFILE_* /
        # REPRO_CPROFILE env vars cannot switch it on behind the CLI.
        from repro.runner import profile_capture
        if args.profile:
            profile_store_dir = (args.store_dir
                                 if args.store_dir is not None
                                 else str(pathlib.Path(args.runs_dir)
                                          / "store"))
        else:
            profile_store_dir = None
            profile_capture.configure_profiles(None)
        if not args.cprofile:
            profile_capture.configure_cprofile(False)
        # Kernels follow the same rule: the flag decides, so an ambient
        # REPRO_KERNELS env var cannot switch the plane on behind the
        # CLI (run_sweep configures the env for pool workers).
        outcome = run_sweep(args.names, sizes=args.sizes, seeds=args.seeds,
                            workers=args.workers, timeout=args.timeout,
                            retries=args.retries, store=store,
                            fresh=args.fresh,
                            faults=args.faults,
                            fault_seed=args.fault_seed,
                            graph_store_dir=graph_store_dir,
                            graph_cache_size=args.graph_cache_size,
                            oracle_store_dir=oracle_store_dir,
                            oracle_cache_size=args.oracle_cache_size,
                            decomposition_store_dir=decomposition_store_dir,
                            decomposition_cache_size=(
                                args.decomposition_cache_size),
                            telemetry=args.telemetry,
                            bench_history_dir=(graph_store_dir
                                               if args.bench_history
                                               else None),
                            profile_store_dir=profile_store_dir,
                            cprofile=(True if args.cprofile else None),
                            kernels=bool(args.kernels))
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2

    exit_code = 0 if outcome.ok else 1
    comparison = None
    if baseline is not None:
        comparison = compare_runs(
            baseline.load_results(), outcome.run.load_results(),
            baseline_id=baseline.run_id, current_id=outcome.run_id,
            tolerance=args.tolerance)
        if not comparison.ok:
            exit_code = 1

    summary = outcome.summary()
    records = outcome.records
    if args.json:
        payload = {"summary": summary,
                   "cells": [r.as_dict() for r in outcome.results]}
        if outcome.history is not None:
            payload["history"] = outcome.history.as_dict()
        if comparison is not None:
            payload["comparison"] = comparison.as_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(_SCENARIO_HEADERS, _scenario_rows(records)))
        verb = "resumed" if outcome.resumed else "recorded"
        print(f"\nrun {outcome.run_id} ({verb}): "
              f"{summary['passed']}/{summary['cells']} cells passed, "
              f"{summary['executed']} executed, "
              f"{summary['skipped']} restored from the store, "
              f"{summary['wall_time']:.2f}s of cell wall time")
        if summary["graph_sources"]:
            sources = ", ".join(
                f"{count} {source}"
                for source, count in sorted(summary["graph_sources"].items()))
            print(f"graph sources: {sources}"
                  + (f" (store: {graph_store_dir})" if graph_store_dir
                     else " (graph store off)"))
        if summary["oracle_sources"]:
            sources = ", ".join(
                f"{count} {source}"
                for source, count in sorted(
                    summary["oracle_sources"].items()))
            print(f"oracle sources: {sources}"
                  + ("" if oracle_store_dir else " (oracle store off)"))
        if summary["decomposition_sources"]:
            sources = ", ".join(
                f"{count} {source}"
                for source, count in sorted(
                    summary["decomposition_sources"].items()))
            print(f"decomposition sources: {sources}"
                  + ("" if decomposition_store_dir
                     else " (decomposition store off)"))
        if summary["engine_sources"]:
            sources = ", ".join(
                f"{count} {source}"
                for source, count in sorted(
                    summary["engine_sources"].items()))
            print(f"engine sources: {sources}")
        fault_counters = summary.get("fault_counters")
        if fault_counters:
            verdicts = fault_counters.get("verdicts") or {}
            meters = fault_counters.get("meters") or {}
            parts = [f"{verdicts[v]} {v}" for v in sorted(verdicts)]
            if meters:
                parts.append(", ".join(
                    f"{meters[m]} {m.replace('_', ' ')}"
                    for m in sorted(meters)))
            print("fault injection: " + "; ".join(parts))
        if summary.get("poisoned"):
            print(f"poisoned cells: {summary['poisoned']} (worker died "
                  f"repeatedly; resumed runs skip them)")
        if args.profile:
            profiled = sum(
                1 for r in outcome.results
                if r.record is not None
                and r.record.get("profile_source", "none") != "none")
            print(f"round profiles: {profiled} cell(s) captured under "
                  f"{profile_store_dir} "
                  f"(inspect with `repro profile ls/show/diff`)")
        if args.cprofile:
            hot_cells = sum(1 for r in outcome.results if r.hot)
            print(f"cProfile: hot functions recorded for {hot_cells} "
                  f"cell(s) (aggregate with `repro runs report "
                  f"{outcome.run_id}`)")
        stats = summarize(records)
        for failure in stats["failures"]:
            print(f"  FAIL {failure}")
        from repro.runner.jobs import error_headline
        for result in outcome.results:
            if result.record is None:
                print(f"  {result.status.upper()} {result.spec.identity}: "
                      f"{error_headline(result.error) or '(no detail)'}")
        if outcome.history is not None:
            record = outcome.history
            print(f"bench history: appended {record.kind}:{record.name} "
                  f"seq {record.sequence} (gate with: repro bench gate "
                  f"{record.name} --kind sweep --history-dir "
                  f"{graph_store_dir})")
        if comparison is not None:
            print()
            _print_comparison(comparison)
    return exit_code


def _parse_bytes(text: str) -> int:
    """'67108864', '64M', '2G', '512K' -> bytes (case-insensitive)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    text = text.strip().lower()
    factor = units.get(text[-1:], None)
    if factor is not None:
        text = text[:-1]
    try:
        value = int(float(text) * (factor or 1))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a byte size: {text!r} (use an integer, optionally "
            f"suffixed K/M/G)") from None
    if value < 0:
        raise argparse.ArgumentTypeError("byte size must be >= 0")
    return value


def _entry_detail(entry) -> str:
    """One compact human-readable column per artifact family."""
    if entry.kind == "graphs":
        meta = entry.manifest.get("graph", {})
        weighted = " weighted" if meta.get("weighted") else ""
        return f"n={meta.get('n', '?')} m={meta.get('m', '?')}{weighted}"
    if entry.kind == "oracles":
        identity = entry.identity
        return (f"{identity.get('oracle', '?')} "
                f"@{str(identity.get('revision', '?'))[:6]}")
    if entry.kind == "decompositions":
        meta = entry.manifest.get("decomposition", {})
        return (f"{entry.identity.get('algorithm', '?')} "
                f"clusters={meta.get('clusters', '?')}")
    if entry.kind == "bench-history":
        identity = entry.identity
        return (f"{identity.get('kind', '?')}:{identity.get('name', '?')} "
                f"seq {identity.get('sequence', '?')} "
                f"@{str(identity.get('revision', '?'))[:6]}")
    if entry.kind == "profiles":
        meta = entry.manifest.get("profile", {})
        faults = entry.identity.get("faults") or ""
        return (f"{entry.identity.get('algorithm', '?')} "
                f"rounds={meta.get('rows', '?')}"
                + (f" faults={faults}" if faults else "")
                + f" @{str(entry.identity.get('revision', '?'))[:6]}")
    return ""


def _cmd_store(args: argparse.Namespace) -> int:
    """The artifact store: ls / stat / gc / warm, per-family aware."""
    from repro.store import DEFAULT_STORE_DIR, ArtifactStore, family_names

    root = (args.store_dir if args.store_dir is not None
            else DEFAULT_STORE_DIR)
    store = ArtifactStore(root)
    family = getattr(args, "family", None)
    if family is not None and args.action != "warm" \
            and family not in family_names():
        print(f"error: unknown artifact family {family!r}; known: "
              f"{', '.join(family_names())}", file=sys.stderr)
        return 2

    if args.action == "ls":
        entries = store.ls(family)
        if args.json:
            print(json.dumps(
                [{"key": e.key, "family": e.kind, **e.identity,
                  **e.manifest.get("graph", {}),
                  "bytes": e.nbytes, "created_at": e.created_at}
                 for e in entries], indent=2))
            return 0
        rows = [(e.key[:12], e.kind,
                 e.identity.get("scenario", "?"),
                 e.identity.get("size", "?"),
                 e.identity.get("derived_seed", "?"),
                 _entry_detail(e),
                 e.nbytes)
                for e in entries]
        print(format_table(
            ["key", "family", "scenario", "size", "derived-seed",
             "detail", "bytes"], rows))
        scope = f" [{family}]" if family else ""
        print(f"\n{len(entries)} artifact(s){scope} under {store.root}")
        return 0

    if args.action == "stat":
        stats = store.stat(family)
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(f"store root : {stats['root']}")
            print(f"entries    : {stats['entries']}")
            print(f"bytes      : {stats['bytes']}")
            if stats.get("quarantined"):
                print(f"quarantined: {stats['quarantined']} corrupt "
                      f"entr{'y' if stats['quarantined'] == 1 else 'ies'} "
                      f"held for inspection (gc drains them)")
            for kind, bucket in sorted(stats["families"].items()):
                line = (f"  {kind}: {bucket['entries']} entries, "
                        f"{bucket['bytes']} bytes")
                if bucket.get("quarantined"):
                    line += f", {bucket['quarantined']} quarantined"
                print(line)
        return 0

    if args.action == "gc":
        if args.keep_last is None and args.max_bytes is None:
            print("error: gc needs --keep-last and/or --max-bytes "
                  "(it refuses to guess how much to delete)",
                  file=sys.stderr)
            return 2
        try:
            removed = store.gc(keep_last=args.keep_last,
                               max_bytes=args.max_bytes, kind=family,
                               dry_run=args.dry_run)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        freed = sum(e.nbytes for e in removed)
        verb = "would remove" if args.dry_run else "removed"
        if args.json:
            print(json.dumps({"removed": [e.key for e in removed],
                              "bytes_freed": freed,
                              "dry_run": args.dry_run}, indent=2))
        else:
            for entry in removed:
                print(f"{verb} {entry.key[:12]} [{entry.kind}] "
                      f"({entry.identity.get('scenario', '?')}, "
                      f"{entry.nbytes} bytes)")
            print(f"{len(removed)} artifact(s) "
                  f"{'would be removed (dry run)' if args.dry_run else 'removed'}, "
                  f"{freed} bytes {'freeable' if args.dry_run else 'freed'}")
        return 0

    # warm: pre-build + publish graphs, baselines, and/or decompositions.
    from repro.scenarios import all_scenarios, get_scenario
    from repro.store import (
        DecompositionStore,
        GraphStore,
        OracleStore,
        warm,
        warm_decompositions,
        warm_oracles,
    )

    if family not in (None, "graphs", "oracles", "decompositions", "all"):
        print(f"error: warm supports --family "
              f"graphs/oracles/decompositions/all, "
              f"got {family!r}", file=sys.stderr)
        return 2
    families = (("graphs", "oracles", "decompositions")
                if family in ("all", None) else (family,))
    try:
        scenarios = (all_scenarios() if args.names is None
                     else [get_scenario(name) for name in args.names])
        counts = {"published": 0, "skipped": 0}
        if "graphs" in families:
            got = warm(GraphStore(root), scenarios, sizes=args.sizes,
                       seeds=tuple(args.seeds))
            counts = {key: counts[key] + got[key] for key in counts}
        if "oracles" in families:
            got = warm_oracles(OracleStore(root), scenarios,
                               sizes=args.sizes, seeds=tuple(args.seeds))
            counts = {key: counts[key] + got[key] for key in counts}
        if "decompositions" in families:
            got = warm_decompositions(DecompositionStore(root), scenarios,
                                      sizes=args.sizes,
                                      seeds=tuple(args.seeds))
            counts = {key: counts[key] + got[key] for key in counts}
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({**counts, "families": list(families),
                          "root": str(store.root)}, indent=2))
    else:
        print(f"warmed {store.root} ({'+'.join(families)}): "
              f"{counts['published']} published, "
              f"{counts['skipped']} already present")
    return 0


def _history_root(args: argparse.Namespace) -> str:
    from repro.store import DEFAULT_STORE_DIR

    return (args.history_dir if args.history_dir is not None
            else DEFAULT_STORE_DIR)


def _tail_per_stream(records, limit):
    """The newest ``limit`` records of every stream, ascending."""
    if limit is None:
        return list(records)
    grouped = {}
    for record in records:
        grouped.setdefault(record.stream, []).append(record)
    kept = []
    for stream in sorted(grouped):
        kept.extend(grouped[stream][-limit:])
    return kept


def _bench_history(args: argparse.Namespace, names) -> int:
    """``repro bench history``: list/filter the recorded trend window."""
    from repro.store import BenchHistoryStore

    store = BenchHistoryStore(_history_root(args))
    records = [r for r in store.history(kind=args.kind, host=args.host)
               if not names or r.name in names]
    records = _tail_per_stream(records, args.limit)
    if args.json:
        print(json.dumps([r.as_dict() for r in records], indent=2))
        return 0
    import time as _time
    rows = []
    for r in records:
        headline = ""
        if r.timings:
            label = sorted(r.timings)[0]
            headline = f"{label}={r.timings[label]:.3g}s"
        rows.append((r.kind, r.name, r.sequence, r.revision[:12], r.host,
                     _time.strftime("%Y-%m-%d %H:%M",
                                    _time.localtime(r.created_at)),
                     headline))
    print(format_table(
        ["kind", "name", "seq", "revision", "host", "recorded", "headline"],
        rows))
    print(f"\n{len(records)} history record(s) under {store.root}")
    return 0


def _bench_report(args: argparse.Namespace, names) -> int:
    """``repro bench report``: per-stream trajectory + hit-rate trends."""
    from repro.store import BenchHistoryStore

    store = BenchHistoryStore(_history_root(args))
    limit = args.limit if args.limit is not None else 8
    streams = [stream for stream in store.streams()
               if (not names or stream[0].name in names)
               and (args.kind is None or stream[0].kind == args.kind)
               and (args.host is None or stream[0].host == args.host)]
    if not streams:
        print(f"no matching bench-history records under {store.root} "
              f"(append some with `repro bench` or a completed "
              f"`repro sweep`)")
        return 0

    def trajectory_rows(tail, values_of, fmt):
        """One row per label, one column per record sequence."""
        labels = sorted({label for r in tail for label in values_of(r)})
        rows = []
        for label in labels:
            rows.append((label, *(fmt(values_of(r)[label])
                                  if label in values_of(r) else "-"
                                  for r in tail)))
        return rows

    payload = []
    for index, stream in enumerate(streams):
        tail = stream[-limit:]
        first, last = tail[0], tail[-1]
        if index:
            print()
        print(f"{last.stream}: {len(stream)} record(s), showing "
              f"seq {first.sequence}..{last.sequence} "
              f"({first.revision[:12]} -> {last.revision[:12]})")
        seq_headers = [f"#{r.sequence}" for r in tail]
        timing_rows = trajectory_rows(tail, lambda r: r.timings,
                                      lambda v: f"{v:.3g}")
        if timing_rows:
            print(format_table(["seconds", *seq_headers], timing_rows))
        speedup_rows = trajectory_rows(tail, lambda r: r.speedups,
                                       lambda v: f"{v:.2f}x")
        if speedup_rows:
            print(format_table(["speedup", *seq_headers], speedup_rows))
        hit_rows = trajectory_rows(tail, lambda r: r.hit_rates(),
                                   lambda v: f"{v:.0%}")
        if hit_rows:
            print(format_table(["store-hit-rate", *seq_headers], hit_rows))
        payload.append({"stream": last.stream,
                        "records": [r.as_dict() for r in tail]})
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def _print_gate_verdict(verdict) -> None:
    if verdict.rows:
        print(format_table(
            ["metric", "current", "median", "ratio", "verdict"],
            [row.row() for row in verdict.rows]))
    if verdict.note:
        print(verdict.note)
    for reason in verdict.skipped:
        print(f"  skipped {reason}")
    state = "PASS" if verdict.ok else "FAIL"
    print(f"gate {state}: {verdict.stream} seq {verdict.current_sequence} "
          f"vs median of last {verdict.window} record(s), "
          f"threshold {verdict.threshold:g}x")


def _bench_gate_smoke(args: argparse.Namespace) -> int:
    """Self-test the rolling gate in both directions in a temp store.

    Mirrors the store benchmarks' smoke mode: append baseline + parity
    records (the gate must pass), then an injected >= 2x slowdown (the
    gate must fail).  Exit 0 iff both directions behave; fixed window/
    threshold so the self-test is independent of the CLI flags.
    """
    import tempfile

    from repro.store.bench_history import BenchHistoryStore, rolling_gate

    with tempfile.TemporaryDirectory() as tmp:
        store = BenchHistoryStore(tmp)
        stream = dict(kind="bench", name="gate-smoke", host="smoke-host")
        store.append(stream["kind"], stream["name"], host=stream["host"],
                     revision="rev-baseline",
                     timings={"sweep.wall_time": 1.0, "cell.hot": 0.25})
        store.append(stream["kind"], stream["name"], host=stream["host"],
                     revision="rev-parity",
                     timings={"sweep.wall_time": 1.02, "cell.hot": 0.24})
        parity = rolling_gate(store.history(**stream))
        print("parity check (1.02s vs 1.0s baseline):")
        _print_gate_verdict(parity)
        store.append(stream["kind"], stream["name"], host=stream["host"],
                     revision="rev-regressed",
                     timings={"sweep.wall_time": 2.3, "cell.hot": 0.26})
        regression = rolling_gate(store.history(**stream))
        print("\ninjected >= 2x slowdown (2.3s vs ~1.0s median):")
        _print_gate_verdict(regression)
    ok = (parity.ok and parity.window >= 1
          and not regression.ok and len(regression.regressions) == 1)
    print(f"\ngate smoke: {'ok' if ok else 'FAILED'} "
          f"(parity {'passed' if parity.ok else 'FAILED'}, "
          f"regression {'caught' if not regression.ok else 'MISSED'})")
    return 0 if ok else 1


def _bench_gate(args: argparse.Namespace, names) -> int:
    """``repro bench gate``: the rolling-window CI regression check."""
    from repro.store import BenchHistoryStore, host_class, rolling_gate

    if args.smoke:
        return _bench_gate_smoke(args)
    if len(names) != 1:
        print("error: gate takes exactly one stream name "
              "(a benchmark name or a sweep-<params> name), or --smoke",
              file=sys.stderr)
        return 2
    store = BenchHistoryStore(_history_root(args))
    host = args.host if args.host is not None else host_class()
    records = store.history(kind=args.kind, name=names[0], host=host)
    if not records:
        print(f"error: no bench-history records for {names[0]!r} on host "
              f"class {host!r} under {store.root} (append one with "
              f"`repro bench {names[0]}` or a completed sweep)",
              file=sys.stderr)
        return 2
    kinds = sorted({r.kind for r in records})
    if len(kinds) > 1:
        print(f"error: {names[0]!r} names records of kinds "
              f"{', '.join(kinds)}; disambiguate with --kind",
              file=sys.stderr)
        return 2
    try:
        verdict = rolling_gate(records, window=args.window,
                               threshold=args.threshold,
                               metrics=args.metrics,
                               min_time=args.min_time)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(verdict.as_dict(), indent=2))
    else:
        _print_gate_verdict(verdict)
    return 0 if verdict.ok else 1


# Reserved first positionals of `repro bench`: subcommands of the
# perf-history plane (everything else is a benchmark name).
_BENCH_ACTIONS = ("history", "report", "gate")


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run registered benchmarks; write one BENCH_*.json per benchmark.

    ``bench history`` / ``bench report`` / ``bench gate`` dispatch to
    the perf-history plane instead (reserved names, documented in the
    parser help); a full benchmark run appends its report to the same
    history store unless ``--no-history`` (smoke runs never append --
    their shrunken workloads are not comparable to full ones).
    """
    from repro.bench import (
        append_report_history,
        benchmark_names,
        run_benchmark,
        write_report,
    )

    names = list(args.names or [])
    if names and names[0] in _BENCH_ACTIONS:
        action, rest = names[0], names[1:]
        dispatch = {"history": _bench_history, "report": _bench_report,
                    "gate": _bench_gate}
        return dispatch[action](args, rest)

    if args.list:
        for name in benchmark_names():
            print(name)
        return 0
    # Fail fast on usage errors: a typo'd name or a missing --out
    # directory must not discard minutes of completed measurements.
    names = names or benchmark_names()
    unknown = [name for name in names if name not in benchmark_names()]
    if unknown:
        print(f"error: unknown benchmark(s) {', '.join(unknown)}; "
              f"known: {', '.join(benchmark_names())}", file=sys.stderr)
        return 2
    if args.out is not None and not pathlib.Path(args.out).is_dir():
        print(f"error: --out {args.out} is not a directory", file=sys.stderr)
        return 2
    # With --json, stdout carries pure JSON (matching the other --json
    # subcommands); progress goes to stderr.
    progress = sys.stderr if args.json else sys.stdout
    reports = []
    for name in names:
        print(f"running benchmark {name} ...", file=sys.stderr)
        report = run_benchmark(name, smoke=args.smoke)
        reports.append(report)
        path = write_report(report, args.out)
        print(f"wrote {path}", file=progress)
        for key, ratio in sorted(report.speedups.items()):
            print(f"  {key}: {ratio:.2f}x", file=progress)
        if args.history and not args.smoke:
            record = append_report_history(report, _history_root(args))
            print(f"history: appended {record.kind}:{record.name} "
                  f"seq {record.sequence} (host {record.host}) "
                  f"under {_history_root(args)}", file=progress)
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """``repro runs``: telemetry views over stored sweep runs."""
    from repro.runner import RunStore
    from repro.telemetry import run_report, run_report_payload, watch_run

    store = RunStore(args.runs_dir)
    try:
        run = store.open_run(args.run_id)
    except KeyError as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.action == "watch":
        try:
            watch_run(run, interval=args.interval, once=args.once,
                      max_seconds=args.max_seconds)
        except KeyboardInterrupt:
            print()
        return 0
    if args.json:
        print(json.dumps(run_report_payload(run, top=args.top), indent=2))
    else:
        print(run_report(run, top=args.top))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: stored round profiles: ls / show / diff."""
    from repro.analysis.profiles import (
        format_profile_diff,
        format_profile_show,
        profile_diff_payload,
        profile_show_payload,
    )
    from repro.store import DEFAULT_STORE_DIR, ProfileStore

    root = (args.store_dir if args.store_dir is not None
            else DEFAULT_STORE_DIR)
    store = ProfileStore(root)

    if args.action == "ls":
        entries = store.ls()
        if args.json:
            print(json.dumps(
                [{"key": e.key, **e.identity,
                  "rounds": e.manifest.get("profile", {}).get("rows"),
                  "bytes": e.nbytes, "created_at": e.created_at}
                 for e in entries], indent=2))
            return 0
        rows = [(e.key[:12], e.identity.get("scenario", "?"),
                 e.identity.get("algorithm", "?"),
                 e.identity.get("size", "?"), e.identity.get("seed", "?"),
                 e.identity.get("faults") or "-",
                 str(e.identity.get("revision", "?"))[:8],
                 e.manifest.get("profile", {}).get("rows", "?"),
                 e.nbytes)
                for e in entries]
        print(format_table(
            ["key", "scenario", "algorithm", "size", "seed", "faults",
             "revision", "rounds", "bytes"], rows))
        print(f"\n{len(entries)} profile(s) under {store.root}")
        return 0

    size = args.size
    if size is None:
        from repro.scenarios import get_scenario
        try:
            size = get_scenario(args.scenario).default_size
        except KeyError as exc:
            message = exc.args[0] if exc.args else str(exc)
            print(f"error: {message}", file=sys.stderr)
            return 2

    def resolve(scenario, algorithm, cell_size, seed, faults, fault_seed,
                revision, label):
        identity = store.find(scenario, algorithm, cell_size, seed,
                              faults=faults or "", fault_seed=fault_seed,
                              revision=revision)
        if identity is None:
            at = f" at revision {revision}" if revision else ""
            print(f"error: no stored profile for {label} "
                  f"{scenario} x {algorithm} (size={cell_size}, "
                  f"seed={seed}"
                  + (f", faults={faults}" if faults else "")
                  + f"){at} under {store.root}; capture one with "
                  f"`repro sweep --profile`", file=sys.stderr)
        return identity

    identity = resolve(args.scenario, args.algorithm, size, args.seed,
                       args.faults, args.fault_seed, args.revision,
                       "cell")
    if identity is None:
        return 2
    profile = store.load(identity)
    if profile is None:
        print(f"error: stored profile {identity} failed to load "
              f"(corrupt entries are quarantined; re-capture with "
              f"`repro sweep --profile`)", file=sys.stderr)
        return 2

    if args.action == "show":
        payload = profile_show_payload(profile, identity,
                                       limit=args.limit)
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(format_profile_show(payload))
        return 0

    # diff: cell B is cell A's coordinates with --against-* overrides,
    # so the common case -- same cell, different revision -- is one flag.
    identity_b = resolve(
        args.against_scenario or args.scenario,
        args.against_algorithm or args.algorithm,
        args.against_size if args.against_size is not None else size,
        args.against_seed if args.against_seed is not None else args.seed,
        args.against_faults if args.against_faults is not None
        else args.faults,
        args.against_fault_seed if args.against_fault_seed is not None
        else args.fault_seed,
        args.against_revision, "--against cell")
    if identity_b is None:
        return 2
    profile_b = store.load(identity_b)
    if profile_b is None:
        print(f"error: stored profile {identity_b} failed to load",
              file=sys.stderr)
        return 2
    payload = profile_diff_payload(profile, profile_b,
                                   identity, identity_b)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_profile_diff(payload))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("apsp", help="Theorem 1.1 / message-optimal APSP")
    p.add_argument("--n", type=int, default=20)
    p.add_argument("--p", type=float, default=0.4)
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--w-max", type=int, default=9)
    p.set_defaults(func=_cmd_apsp)

    p = sub.add_parser("tradeoff", help="Theorem 1.2 eps sweep")
    p.add_argument("--n", type=int, default=24)
    p.add_argument("--p", type=float, default=0.35)
    p.add_argument("--eps", type=float, nargs="+",
                   default=[0.0, 0.5, 1.0])
    p.set_defaults(func=_cmd_tradeoff)

    p = sub.add_parser("matching", help="Corollary 2.8 bipartite matching")
    p.add_argument("--left", type=int, default=7)
    p.add_argument("--right", type=int, default=8)
    p.add_argument("--p", type=float, default=0.35)
    p.set_defaults(func=_cmd_matching)

    p = sub.add_parser("cover", help="Corollary 2.9 neighborhood cover")
    p.add_argument("--n", type=int, default=30)
    p.add_argument("--p", type=float, default=0.25)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--w", type=int, default=2)
    p.set_defaults(func=_cmd_cover)

    p = sub.add_parser("decompose",
                       help="build + verify a pruned Baswana-Sen hierarchy")
    p.add_argument("--n", type=int, default=40)
    p.add_argument("--p", type=float, default=0.25)
    p.add_argument("--eps", type=float, default=0.5)
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser(
        "scenarios",
        help="the named scenario matrix: list / run / sweep")
    scen_sub = p.add_subparsers(dest="action", required=True)

    q = scen_sub.add_parser("list", help="show every registered scenario")
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_scenarios)

    q = scen_sub.add_parser(
        "run", help="run one scenario through the differential oracles")
    q.add_argument("name")
    q.add_argument("--size", type=int, default=None)
    q.add_argument("--algorithm", default=None)
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_scenarios)

    q = scen_sub.add_parser(
        "sweep", help="run the scenario x algorithm x size matrix")
    q.add_argument("--names", nargs="+", default=None)
    q.add_argument("--sizes", type=int, nargs="+", default=None)
    q.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process)")
    q.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-time budget in seconds")
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser(
        "sweep",
        help="the parallel sweep engine: run / resume / compare "
             "persisted matrix sweeps (src/repro/runner/)")
    p.add_argument("--names", nargs="+", default=None,
                   help="scenarios to sweep (default: all)")
    p.add_argument("--sizes", type=int, nargs="+", default=None,
                   help="workload sizes (default: each scenario's tier-1 "
                        "default_size)")
    p.add_argument("--seeds", type=int, nargs="+", default=[0])
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-time budget in seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="per-cell retry budget: re-queue timed-out or "
                        "crashed cells up to N extra times before "
                        "recording them as failures (attempts are "
                        "recorded in the cell record)")
    p.add_argument("--runs-dir", default="runs",
                   help="run-store directory (default: runs/)")
    p.add_argument("--store", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="serve scenario graphs and oracle baselines "
                        "through the shared on-disk artifact store "
                        "(mmap'd arrays, shared across workers, sweeps, "
                        "and revisions); --no-store disables both "
                        "families (default: on)")
    p.add_argument("--store-dir", default=None,
                   help="artifact-store directory (default: "
                        "<runs-dir>/store)")
    p.add_argument("--oracle-store", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="serve differential baselines from the store's "
                        "oracle family; --no-oracle-store computes every "
                        "cell's baseline while keeping graph snapshots "
                        "(default: on, moot under --no-store)")
    p.add_argument("--graph-cache-size", type=int, default=None,
                   help="per-worker graph LRU capacity (0 disables the "
                        "in-process cache; default: leave the configured "
                        "size, recorded in the run manifest)")
    p.add_argument("--decomposition-store",
                   action=argparse.BooleanOptionalAction, default=True,
                   help="serve the staged pipeline's LDC snapshots from "
                        "the store's decomposition family; "
                        "--no-decomposition-store recomputes the "
                        "decomposition per scenario x size while keeping "
                        "the other families (default: on, moot under "
                        "--no-store)")
    p.add_argument("--oracle-cache-size", type=int, default=None,
                   help="per-worker oracle-value LRU capacity (0 disables "
                        "it; default: leave the configured size, recorded "
                        "in the run manifest)")
    p.add_argument("--decomposition-cache-size", type=int, default=None,
                   help="per-worker decomposition-snapshot LRU capacity "
                        "(0 disables it; default: leave the configured "
                        "size, recorded in the run manifest)")
    p.add_argument("--faults", nargs="+", default=None, metavar="PROFILE",
                   help="inject faults: run every cell under each named "
                        "fault profile (lossy-light, lossy-heavy, "
                        "dup-storm, reorder-heavy, flaky-links, churn, "
                        "chaos) -- cells are graded correct-under-faults "
                        "/ degraded / diverged instead of pass/fail "
                        "(default: no fault injection)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault plan realization; the same "
                        "--faults --fault-seed pair replays the exact "
                        "same drops/duplicates/crashes (default: 0)")
    p.add_argument("--fresh", action="store_true",
                   help="start a new run even if an incomplete "
                        "same-params run could be resumed")
    p.add_argument("--compare", metavar="RUN_ID", default=None,
                   help="baseline run to diff against; alone, the sweep "
                        "executes and is compared to this baseline")
    p.add_argument("--against", metavar="RUN_ID", default=None,
                   help="with --compare: diff these two stored runs "
                        "without executing anything")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="relative rounds/messages drift tolerated by "
                        "--compare (default 0: bit-identical meters)")
    p.add_argument("--telemetry", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="record a per-run telemetry.jsonl timeline "
                        "(cell lifecycle + meters) beside the cell "
                        "records, rendered by `repro runs report`; "
                        "canonical records are byte-identical either way "
                        "(default: on)")
    p.add_argument("--bench-history", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="on sweep completion, append a perf record "
                        "(wall times, store hit rates) to the "
                        "bench-history family of the artifact store for "
                        "`repro bench report` / `repro bench gate` "
                        "(default: on, moot under --no-store)")
    p.add_argument("--profile", action="store_true",
                   help="capture a per-round metric timeline for every "
                        "executed cell into the store's profiles family "
                        "(messages/words/broadcasts/congestion per round, "
                        "phase markers); inspect with `repro profile "
                        "show` / `diff`; canonical cell records stay "
                        "byte-identical (default: off)")
    p.add_argument("--cprofile", action="store_true",
                   help="run each cell under cProfile and record its top "
                        "hot functions in the cell result, aggregated "
                        "across the run by `repro runs report` "
                        "(default: off)")
    p.add_argument("--kernels", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="run eligible cells on the array-native round "
                        "engines (src/repro/kernels/): whole-execution "
                        "numpy sweeps with exact metering replication; "
                        "records gain an engine_source provenance label "
                        "and stay byte-identical kernels on or off "
                        "(default: off)")
    p.add_argument("--list-runs", action="store_true",
                   help="list stored runs and exit")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "store",
        help="the on-disk artifact store (graph snapshots, oracle "
             "baselines, decomposition snapshots): ls / stat / gc / "
             "warm (src/repro/store/)")
    store_sub = p.add_subparsers(dest="action", required=True)

    def _store_action(name, help_text):
        q = store_sub.add_parser(name, help=help_text)
        q.add_argument("--store-dir", default=None,
                       help="store directory (default: runs/store)")
        q.add_argument("--family", default=None,
                       help="restrict to one artifact family "
                            "(graphs / oracles / decompositions / "
                            "bench-history / profiles; default: all)")
        q.add_argument("--json", action="store_true")
        q.set_defaults(func=_cmd_store)
        return q

    _store_action("ls", "list stored artifacts")
    _store_action("stat",
                  "aggregate store statistics with per-family breakdown")

    q = _store_action(
        "gc", "prune old artifacts by count and/or total bytes "
              "(--family scopes the budget to one family)")
    q.add_argument("--keep-last", type=int, default=None,
                   help="keep only the N newest artifacts")
    q.add_argument("--max-bytes", type=_parse_bytes, default=None,
                   help="drop oldest artifacts until the payload fits "
                        "(integer bytes, K/M/G suffixes accepted)")
    q.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without deleting "
                        "anything (also skips the quarantine drain and "
                        "temp-directory sweep)")

    q = _store_action(
        "warm",
        "pre-build and publish scenario graphs, baselines, and "
        "decomposition snapshots so the next sweep starts warm "
        "(--family graphs/oracles/decompositions/all, default: all)")
    q.add_argument("--names", nargs="+", default=None,
                   help="scenarios to warm (default: all registered)")
    q.add_argument("--sizes", type=int, nargs="+", default=None,
                   help="workload sizes (default: each scenario's tier-1 "
                        "default_size)")
    q.add_argument("--seeds", type=int, nargs="+", default=[0])

    p = sub.add_parser(
        "bench",
        help="run registered benchmarks and write BENCH_*.json reports; "
             "`bench history` / `bench report` / `bench gate` query the "
             "perf-history store (src/repro/bench.py, "
             "src/repro/store/bench_history.py)")
    p.add_argument("names", nargs="*", default=None,
                   help="benchmarks to run (default: all registered); the "
                        "reserved first words `history`, `report`, and "
                        "`gate` dispatch to the perf-history plane "
                        "instead, with any further names filtering "
                        "history streams")
    p.add_argument("--out", default=None,
                   help="directory for the BENCH_*.json files "
                        "(default: current directory)")
    p.add_argument("--list", action="store_true",
                   help="list registered benchmarks and exit")
    p.add_argument("--smoke", action="store_true",
                   help="fast CI mode: benchmarks that support it shrink "
                        "their workloads and reps (numbers are not "
                        "comparable to full runs, so smoke runs never "
                        "append history); with `gate`, self-test the "
                        "rolling gate in a temporary store instead")
    p.add_argument("--json", action="store_true",
                   help="also print the reports as JSON to stdout")
    p.add_argument("--history", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="append each full benchmark report to the "
                        "bench-history store family for `bench report` / "
                        "`bench gate` (default: on; smoke runs never "
                        "append)")
    p.add_argument("--history-dir", default=None,
                   help="bench-history store root (default: the shared "
                        "artifact-store default, runs/store)")
    p.add_argument("--kind", default=None,
                   help="history filter: record kind (bench / sweep)")
    p.add_argument("--host", default=None,
                   help="history filter: host class (default for `gate`: "
                        "this machine's host class; records are never "
                        "compared across host classes)")
    p.add_argument("--limit", type=int, default=None,
                   help="newest records to show per stream (history/"
                        "report; report default: 8)")
    p.add_argument("--window", type=int, default=5,
                   help="gate: baseline window, the current record is "
                        "compared against the median of up to this many "
                        "predecessors (default: 5)")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="gate: fail when current/median exceeds this "
                        "ratio for any gated timing (default: 1.5)")
    p.add_argument("--metrics", nargs="+", default=None,
                   help="gate: restrict to these timing labels "
                        "(default: every label in the current record)")
    p.add_argument("--min-time", type=float, default=1e-3,
                   help="gate: noise floor in seconds; labels whose "
                        "baseline median is below are skipped "
                        "(default: 1e-3)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "runs",
        help="stored sweep runs: per-run telemetry timeline reports "
             "(src/repro/telemetry/)")
    runs_sub = p.add_subparsers(dest="action", required=True)
    q = runs_sub.add_parser(
        "report",
        help="render one run's telemetry.jsonl timeline: slowest cells, "
             "retry/timeout clusters, cache efficacy over time")
    q.add_argument("run_id", help="run id (see `repro sweep --list-runs`)")
    q.add_argument("--runs-dir", default="runs",
                   help="run-store directory (default: runs/)")
    q.add_argument("--top", type=int, default=10,
                   help="slowest cells to list (default: 10)")
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_runs)

    q = runs_sub.add_parser(
        "watch",
        help="tail a run's telemetry timeline live: in-place progress, "
             "cache hit rates so far, slowest cells so far")
    q.add_argument("run_id", help="run id (see `repro sweep --list-runs`)")
    q.add_argument("--runs-dir", default="runs",
                   help="run-store directory (default: runs/)")
    q.add_argument("--interval", type=float, default=1.0,
                   help="refresh interval in seconds (default: 1)")
    q.add_argument("--once", action="store_true",
                   help="render a single snapshot and exit (CI-friendly)")
    q.add_argument("--max-seconds", type=float, default=None,
                   help="give up after this many seconds even if the run "
                        "has not completed (default: watch forever)")
    q.set_defaults(func=_cmd_runs)

    p = sub.add_parser(
        "profile",
        help="stored per-round execution profiles, captured by `repro "
             "sweep --profile`: ls / show / diff "
             "(src/repro/congest/profile.py, src/repro/store/profiles.py)")
    profile_sub = p.add_subparsers(dest="action", required=True)

    q = profile_sub.add_parser("ls", help="list stored round profiles")
    q.add_argument("--store-dir", default=None,
                   help="artifact-store directory (default: runs/store)")
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_profile)

    def _profile_cell(q):
        q.add_argument("scenario", help="scenario name")
        q.add_argument("algorithm", help="algorithm name within it")
        q.add_argument("--size", type=int, default=None,
                       help="workload size (default: the scenario's "
                            "tier-1 default_size)")
        q.add_argument("--seed", type=int, default=0)
        q.add_argument("--faults", default=None,
                       help="fault profile the cell ran under "
                            "(default: the clean cell)")
        q.add_argument("--fault-seed", type=int, default=0)
        q.add_argument("--revision", default=None,
                       help="exact source revision (default: the newest "
                            "stored profile for the cell)")
        q.add_argument("--store-dir", default=None,
                       help="artifact-store directory (default: "
                            "runs/store)")
        q.add_argument("--json", action="store_true")
        q.set_defaults(func=_cmd_profile)

    q = profile_sub.add_parser(
        "show",
        help="render one cell's profile: round timeline, peak-congestion "
             "round, phase breakdown")
    _profile_cell(q)
    q.add_argument("--limit", type=int, default=40,
                   help="timeline rows to show; longer timelines are "
                        "bucketed down to this many (default: 40)")

    q = profile_sub.add_parser(
        "diff",
        help="compare two stored profiles phase-by-phase; the second "
             "cell is the first with any --against-* coordinates "
             "overridden (e.g. --against-revision alone compares the "
             "same cell across revisions)")
    _profile_cell(q)
    q.add_argument("--against-scenario", default=None)
    q.add_argument("--against-algorithm", default=None)
    q.add_argument("--against-size", type=int, default=None)
    q.add_argument("--against-seed", type=int, default=None)
    q.add_argument("--against-faults", default=None)
    q.add_argument("--against-fault-seed", type=int, default=None)
    q.add_argument("--against-revision", default=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro scenarios list | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
