"""Lemmas 3.22 / 3.23: computing n BFS trees under the trade-off simulations.

Lemma 3.22 (eps in [1/2, 1]): combine the n BFS algorithms into one
aggregation-based machine via shared random delays (Theorem 1.4),
disseminate the delays through the leader's tree (the shared-randomness
implementation of §3.3), and run the Theorem 3.10 star simulation over a
single pruned hierarchy.

Lemma 3.23 (eps in (0, 1/2]): partition the n BFS computations into
b = ceil(n^eps) batches of ~n^{1-eps}, cap their depth at Õ(n^{1-eps}),
give each batch its own independently-built pruned hierarchy (the
ensemble of Lemma 3.8), and run each batch through the Theorem 3.9
general simulation.

On composition: the paper runs the b batch simulations concurrently and
invokes Theorem 1.3 (random-delay scheduling) to bound the combined
round count by Õ(congestion + dilation).  This driver executes the batch
simulations sequentially -- which leaves outputs, message counts, and
per-edge congestion *identical* to the concurrent run -- and reports the
Theorem 1.3 round bound computed from the measured congestion and
dilation (``rounds_scheduled``) alongside the raw sequential round sum
(``rounds_sequential``).  Benchmark E3 reports both; E6 validates the
congestion-smoothing input to the formula empirically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.congest.metrics import Metrics
from repro.core.aggregation import component_batches
from repro.core.tradeoff_sim import TradeoffReport, simulate_aggregation
from repro.core.tradeoff_sim_star import simulate_aggregation_star
from repro.decomposition.ensemble import build_ensemble
from repro.decomposition.pruning import build_pruned_hierarchy
from repro.graphs.graph import Graph
from repro.kernels import config as kernels
from repro.primitives.bfs import BFSCollectionMachine
from repro.primitives.global_tree import build_global_tree, disseminate


@dataclass
class BFSTreesResult:
    """Per-node ``{root: (dist, parent)}`` plus the cost breakdown."""

    trees: Dict[int, Dict[int, Tuple[int, Optional[int]]]]
    metrics: Metrics
    detail: Dict[str, float] = field(default_factory=dict)
    reports: List[TradeoffReport] = field(default_factory=list)


def shared_delays(ids: List[int], spread: int, seed: int) -> Dict[int, int]:
    from repro.congest.network import stable_seed
    rng = random.Random(stable_seed("bfs-delays", seed))
    return {j: rng.randint(1, max(1, spread)) for j in ids}


def _message_budget(n: int) -> int:
    # Theorem 1.4(ii): O(log n) distinct BFS ids per node-round, three
    # words per id record; generous constant, verified by benchmark E4.
    return max(32, 12 * max(1, int(math.log2(max(n, 2)))) ** 2)


def n_bfs_trees_star(graph: Graph, eps: float, *, seed: int = 0,
                     roots: Optional[List[int]] = None) -> BFSTreesResult:
    """Lemma 3.22: n full BFS trees, eps in [1/2, 1]."""
    if not 0.5 <= eps <= 1:
        raise ValueError("Lemma 3.22 requires eps in [1/2, 1]")
    n = graph.n
    total = Metrics()
    tree = build_global_tree(graph, seed=seed)
    total.merge(tree.metrics)
    root_list = list(graph.nodes()) if roots is None else list(roots)
    delays = shared_delays(root_list, len(root_list), seed)
    _received, m = disseminate(
        graph, tree, [(j, delays[j]) for j in sorted(delays)], seed=seed)
    total.merge(m)

    hierarchy = build_pruned_hierarchy(graph, eps, seed=seed + 13)
    total.merge(hierarchy.metrics)

    root_map = {j: j for j in root_list}

    def factory(info):
        return BFSCollectionMachine(info, roots=root_map, delays=delays)

    report = None
    if kernels.engine_ready():
        from repro.kernels import wavefront
        report = wavefront.star_report(
            graph, hierarchy, root_map, delays,
            message_words=_message_budget(n))
        if report is not None:
            kernels.note_engine("kernel:bfs-wavefront")
    if report is None:
        report = simulate_aggregation_star(
            graph, hierarchy, factory,
            aggregate=BFSCollectionMachine.aggregate,
            seed=seed, message_words=_message_budget(n),
            include_tree_preprocessing=False)
    total.merge(report.total)
    trees = {v: dict(report.outputs[v] or {}) for v in graph.nodes()}
    return BFSTreesResult(
        trees=trees, metrics=total,
        detail={
            "mode": 1.0,  # star
            "phases": report.phases,
            "cluster_congestion": report.cluster_edge_congestion,
            "non_cluster_congestion": report.non_cluster_edge_congestion,
        },
        reports=[report])


def depth_cap(n: int, eps: float) -> int:
    """The Õ(n^{1-eps}) BFS depth cap of Lemma 3.23."""
    return max(2, int(math.ceil(max(n, 2) ** (1.0 - eps))))


def n_bfs_trees_batched(graph: Graph, eps: float, *, seed: int = 0,
                        cap: Optional[int] = None) -> BFSTreesResult:
    """Lemma 3.23: n depth-capped BFS trees, eps in (0, 1/2]."""
    if not 0 < eps <= 0.5:
        raise ValueError("Lemma 3.23 requires eps in (0, 1/2]")
    n = graph.n
    if cap is None:
        cap = depth_cap(n, eps)
    b = max(1, int(math.ceil(n ** eps)))
    total = Metrics()
    tree = build_global_tree(graph, seed=seed)
    total.merge(tree.metrics)

    batches = component_batches(list(graph.nodes()), b)
    ensemble = build_ensemble(graph, eps, len(batches), seed=seed + 29)
    for h in ensemble:
        total.merge(h.metrics)

    trees: Dict[int, Dict[int, Tuple[int, Optional[int]]]] = {
        v: {} for v in graph.nodes()}
    reports: List[TradeoffReport] = []
    combined_sim = Metrics()
    max_dilation_rounds = 0
    for idx, batch in enumerate(batches):
        if not batch:
            continue
        delays = shared_delays(batch, len(batch), seed + idx)
        _received, m = disseminate(
            graph, tree, [(j, delays[j]) for j in sorted(delays)],
            seed=seed + idx)
        total.merge(m)
        root_map = {j: j for j in batch}

        def factory(info, _roots=root_map, _delays=delays):
            return BFSCollectionMachine(info, roots=_roots, delays=_delays,
                                        max_depth=cap)

        report = simulate_aggregation(
            graph, ensemble[idx], factory,
            aggregate=BFSCollectionMachine.aggregate,
            seed=seed, message_words=_message_budget(n),
            include_tree_preprocessing=False)
        reports.append(report)
        total.merge(report.total)
        combined_sim.merge(report.simulation, parallel=True)
        max_dilation_rounds = max(max_dilation_rounds,
                                  report.simulation.rounds)
        for v in graph.nodes():
            out = report.outputs[v] or {}
            trees[v].update(out)

    # Theorem 1.3 composition bound on the concurrent schedule: the
    # sequential execution above has identical messages/congestion.
    log_n = max(1, int(math.ceil(math.log2(max(n, 2)))))
    congestion = combined_sim.max_edge_congestion
    rounds_scheduled = congestion + max_dilation_rounds * log_n
    return BFSTreesResult(
        trees=trees, metrics=total,
        detail={
            "mode": 0.0,  # batched / general
            "batches": len(batches),
            "cap": cap,
            "rounds_sequential": total.rounds,
            "rounds_scheduled": rounds_scheduled,
            "combined_congestion": congestion,
            "max_batch_dilation": max_dilation_rounds,
        },
        reports=reports)
