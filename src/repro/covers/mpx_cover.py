"""(k, W)-sparse neighborhood covers in BCONGEST (Corollary 2.9).

Definition (§2.4): a collection of trees C such that (1) every tree has
depth O(W k), (2) each vertex appears in Õ(k n^{1/k}) trees, and (3)
some tree contains the entire W-neighborhood of each vertex.

Construction (see DESIGN.md, substitution 2 -- an MPX-shift cover in
place of Elkin's algorithm [13], with the same guarantees and the same
broadcast-based structure): run r = Θ(n^{1/k} log n) independent
repetitions of exponential-shift ball carving with rate
beta = ln(n) / (2 k W).

* Each repetition partitions V into clusters spanned by trees of depth
  <= 2 * cap ~ O(kW log-ish); since every vertex joins exactly one
  cluster per repetition, the per-vertex overlap is exactly r =
  Õ(n^{1/k})  -- property (2).
* By memorylessness of the shift distribution, a vertex's W-ball lies
  entirely inside its cluster ("W-padded") with probability >=
  e^{-2 beta W} = n^{-1/k} per repetition, so with r repetitions every
  vertex is padded somewhere w.h.p. -- property (3).

Each repetition is one MPX machine run: broadcast complexity exactly n,
so the total broadcast complexity is Õ(n^{1+1/k}) and Theorem 2.1 turns
the construction into an Õ(n²)-message CONGEST algorithm
(:mod:`repro.core.cover_app`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.reference import bfs_distances
from repro.congest.metrics import Metrics
from repro.decomposition.mpx import Clustering, MPXMachine
from repro.graphs.graph import Graph


def cover_beta(n: int, k: int, w: int) -> float:
    return math.log(max(n, 2)) / (2.0 * k * w)


def cover_repetitions(n: int, k: int, *, boost: float = 3.0) -> int:
    return max(1, int(math.ceil(
        boost * (max(n, 2) ** (1.0 / k)) * math.log(max(n, 2)))))


@dataclass
class NeighborhoodCover:
    """The cover: one clustering per repetition, flattened into trees."""

    k: int
    w: int
    clusterings: List[Clustering]
    metrics: Metrics = field(default_factory=Metrics)

    def trees(self) -> List[Dict[int, Optional[int]]]:
        """Each tree as a parent map restricted to one cluster."""
        out = []
        for clustering in self.clusterings:
            for center, members in clustering.members().items():
                out.append({v: clustering.parent[v] for v in members})
        return out

    def trees_of_vertex(self, v: int) -> int:
        """Property (2): the number of trees containing v."""
        return sum(1 for c in self.clusterings if v in c.center_of)

    def max_depth(self) -> int:
        """Property (1): the maximum tree depth."""
        return max((c.max_radius() for c in self.clusterings), default=0)

    def padded_repetition(self, graph: Graph, v: int) -> Optional[int]:
        """Property (3): a repetition whose cluster of v contains the
        whole W-ball of v, or None."""
        ball = set(bfs_distances(graph, v, max_depth=self.w))
        for idx, clustering in enumerate(self.clusterings):
            center = clustering.center_of[v]
            members = {u for u, c in clustering.center_of.items()
                       if c == center}
            if ball <= members:
                return idx
        return None

    def verify(self, graph: Graph) -> Dict[str, float]:
        """Check all three properties; raise on a padding failure."""
        depth = self.max_depth()
        overlap = max(self.trees_of_vertex(v) for v in graph.nodes())
        unpadded = [v for v in graph.nodes()
                    if self.padded_repetition(graph, v) is None]
        if unpadded:
            raise AssertionError(
                f"vertices {unpadded} have no W-padded tree "
                "(w.h.p. event failed; increase repetitions)")
        return {
            "max_depth": depth,
            "max_overlap": overlap,
            "repetitions": len(self.clusterings),
            "depth_bound": 4 * self.k * self.w,   # O(kW) scale, cap-based
            "overlap_bound": cover_repetitions(graph.n, self.k),
        }


class CoverCollectionMachine:
    """All Õ(n^{1/k}) ball-carving repetitions as ONE BCONGEST machine.

    Repetition r runs in its own round window of T = 2*cap + 4 rounds
    (an MPX run finishes within 2*cap + 2 rounds; two silent rounds
    drain in-flight messages).  Packaging the whole construction as a
    single machine is what lets Corollary 2.9 pay the Theorem 2.1
    preprocessing once, rather than once per repetition.
    """

    def __init__(self, info, reps: int, beta: float, cap: int):
        from repro.congest.network import NodeInfo  # local, avoids cycle
        self.info = info
        self.reps = reps
        self.cap = cap
        self.window = 2 * cap + 4
        self.halted = False
        self.machines = []
        for rep in range(reps):
            sub_info = NodeInfo(
                id=info.id, neighbors=info.neighbors, n=info.n,
                weights=info.weights, in_weights=info.in_weights,
                input=None,
                seed=(info.seed * 1_000_003 + rep * 7919) & 0x7FFFFFFF)
            self.machines.append(MPXMachine(sub_info, beta=beta, cap=cap))
        self._output = [None] * reps

    # Machine protocol -------------------------------------------------
    def passive(self) -> bool:
        return self.halted

    def wake_round(self):
        return None if self.halted else 1

    def output(self):
        return list(self._output)

    def set_output(self, value):  # pragma: no cover - protocol slot
        self._output = value

    def on_round(self, rnd: int, inbox):
        if self.halted:
            return None
        rep = (rnd - 1) // self.window
        local = (rnd - 1) % self.window + 1
        if rep >= self.reps:
            self.halted = True
            return None
        machine = self.machines[rep]
        payload = machine.on_round(local, inbox)
        self._output[rep] = machine.output()
        if rnd == self.reps * self.window:
            self.halted = True
        if payload is None:
            return None
        return payload


def build_cover_machine_factory(graph: Graph, k: int, w: int, *,
                                boost: float = 3.0):
    """Factory for the combined construction machine plus its shape."""
    n = graph.n
    beta = cover_beta(n, k, w)
    reps = cover_repetitions(n, k, boost=boost)
    cap = max(1, int(math.ceil(4 * k * w)))

    def factory(info):
        return CoverCollectionMachine(info, reps=reps, beta=beta, cap=cap)

    return factory, reps, beta, cap


def clustering_from_outputs(graph: Graph, outputs: Dict[int, dict],
                            beta: float) -> Clustering:
    """Package one repetition's machine outputs as a Clustering."""
    center_of = {}
    dist = {}
    parent = {}
    neighbor_clusters: Dict[int, Dict[int, int]] = {}
    for v in graph.nodes():
        out = outputs[v]
        center_of[v] = out["center"]
        dist[v] = out["dist"]
        parent[v] = out["parent"]
    for v in graph.nodes():
        heard = outputs[v]["heard"]
        table: Dict[int, int] = {}
        for nbr in graph.neighbors(v):
            c = heard.get(nbr, center_of[nbr])
            if c not in table or nbr < table[c]:
                table[c] = nbr
        neighbor_clusters[v] = table
    return Clustering(center_of=center_of, dist=dist, parent=parent,
                      neighbor_clusters=neighbor_clusters,
                      metrics=Metrics(), beta=beta)
