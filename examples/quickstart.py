#!/usr/bin/env python
"""Quickstart: message-optimal APSP on a simulated CONGEST network.

Builds a dense random graph, solves weighted APSP with the paper's
message-optimal algorithm (Theorem 1.1), and compares the measured
message/round costs against the direct round-optimal execution -- the
trade the paper is about.  Run:

    python examples/quickstart.py
"""

from repro import weighted_apsp
from repro.baselines.apsp_direct import apsp_direct_weighted
from repro.baselines.reference import weighted_apsp as sequential_apsp
from repro.graphs import gnp, uniform_weights


def main() -> None:
    n = 24
    graph = uniform_weights(gnp(n, 0.5, seed=7), w_max=9, seed=7)
    print(f"graph: {graph.name}  (n={graph.n}, m={graph.m})")

    # The paper's algorithm: Theorem 2.1 simulation of a broadcast-based
    # weighted APSP, message complexity ~ broadcast complexity.
    result = weighted_apsp(graph, seed=1)

    # The comparator: the same distance computation run directly in
    # CONGEST -- round-optimal but message-heavy (Theta(n * m)).
    direct = apsp_direct_weighted(graph, seed=1)

    # Both must agree with a sequential oracle.
    reference = sequential_apsp(graph)
    assert result.dist == reference, "message-optimal APSP must be exact"
    assert direct.dist == reference, "direct APSP must be exact"

    print("\ndistance sample: d(0 -> v) for v < 8:")
    print("  ", [result.distance(0, v) for v in range(8)])

    print("\ncost comparison (measured on the simulator):")
    print(f"  message-optimal (Thm 1.1):  "
          f"{result.metrics.messages:>8} messages, "
          f"{result.metrics.rounds:>7} rounds")
    print(f"  round-optimal baseline:     "
          f"{direct.metrics.messages:>8} messages, "
          f"{direct.metrics.rounds:>7} rounds")
    ratio = direct.metrics.messages / result.metrics.messages
    print(f"\n  -> the paper's algorithm sends {ratio:.1f}x fewer messages,")
    print("     paying for it in rounds -- exactly the trade-off of")
    print("     Theorems 1.1 and 1.2.")


if __name__ == "__main__":
    main()
