"""The scenario-graph cache chain: per-worker LRU -> disk store -> build.

Scenario construction is seed-deterministic: the graph a cell runs on
is fully determined by ``(scenario name, size, derived construction
seed)``, where the derived seed is :meth:`Scenario.seed_for` of the
caller seed (the same derivation recorded as ``derived_seed`` in every
differential record).  That makes the built graph content-addressed by
that key, and this module serves it through a fall-through chain:

1. the **in-process LRU** -- same-key cells in one worker share one
   built instance, caches and all (``Graph`` memoizes its simulator
   precomputation and weight views per instance);
2. the **on-disk graph store** (:mod:`repro.store`), when configured --
   a shared, content-addressed snapshot directory that every pool
   worker, repeated sweep, and later revision mmaps
   (``np.load(mmap_mode="r")``) instead of re-running the generator;
3. **build-and-publish** -- the generator runs, and the result is
   published to the store (atomic, race-safe) for everyone else.

The LRU stays process-local by design (graphs never cross the pool
boundary); the store is what the workers share.  Both are configured
process-wide here, and both propagate to pool workers through the
environment (:data:`STORE_DIR_ENV`, :data:`CACHE_SIZE_ENV`), which
``ProcessPoolExecutor`` children inherit under every start method.
Graphs are treated as immutable by every consumer, which is what makes
sharing instances -- and read-only mmap'd snapshots -- sound; the
byte-identity tests in ``tests/test_store.py`` and
``tests/test_graph_core.py`` pin that executions over a cached or
store-loaded graph equal executions over a fresh build.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.graphs.graph import Graph
    from repro.scenarios.registry import Scenario
    from repro.store.graphs import GraphStore

CacheKey = Tuple[str, int, int]  # (scenario name, size, derived seed)

# A worker sees at most a handful of distinct scenario x size keys in
# flight at once; 32 graphs comfortably covers a full-matrix sweep's
# working set while bounding memory on dense entries.
DEFAULT_MAXSIZE = 32

# Environment knobs: how configuration reaches pool worker processes.
CACHE_SIZE_ENV = "REPRO_GRAPH_CACHE_SIZE"
STORE_DIR_ENV = "REPRO_GRAPH_STORE_DIR"

# Where a served graph came from (recorded per cell as graph_source).
BUILT = "built"
LRU_HIT = "lru"
STORE_HIT = "store"


def _env_maxsize() -> int:
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None:
        return DEFAULT_MAXSIZE
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MAXSIZE


_cache: "OrderedDict[CacheKey, Graph]" = OrderedDict()
_maxsize = _env_maxsize()
_hits = 0
_misses = 0
_store_hits = 0
_store_misses = 0
_publishes = 0

# Tri-state store handle: None + probed=False means "consult the
# environment on first use" (how fork- and spawn-started pool workers
# pick up the parent's configure_store call).
_store: Optional["GraphStore"] = None
_store_probed = False


def scenario_graph(scenario: "Scenario", size: Optional[int] = None,
                   seed: int = 0) -> "Graph":
    """The scenario's graph at ``size``, served from the cache chain.

    Equivalent to ``scenario.graph(size, seed=seed)`` -- same
    validation, same derived construction seed -- but same-key calls
    after the first return the one cached instance (or a shared mmap'd
    snapshot) instead of rebuilding.  Keys include the derived seed, so
    cells with different caller seeds (or registry entries whose
    derivation changed) can never share a graph.
    """
    return scenario_graph_source(scenario, size, seed=seed)[0]


def scenario_graph_source(scenario: "Scenario", size: Optional[int] = None,
                          seed: int = 0) -> Tuple["Graph", str]:
    """Like :func:`scenario_graph`, plus where the graph came from.

    The source is one of :data:`LRU_HIT`, :data:`STORE_HIT`, or
    :data:`BUILT` -- the provenance the sweep engine records per cell
    (as ``graph_source``, a nondeterministic record field: cache state
    must never change a canonical record byte).
    """
    global _hits, _misses, _store_hits, _store_misses, _publishes
    size = scenario.default_size if size is None else size
    key = (scenario.name, size, scenario.seed_for(size, seed))
    graph = _cache.get(key)
    if graph is not None:
        _hits += 1
        _cache.move_to_end(key)
        return graph, LRU_HIT
    _misses += 1
    source = BUILT
    graph = None
    store = effective_store()
    if store is not None:
        # A degenerate size can never have a published snapshot (only
        # successfully-built graphs are published), so an invalid size
        # simply misses here and raises scenario.graph's own
        # validation error in the build step below.
        graph = store.load(*key)
        if graph is not None:
            _store_hits += 1
            source = STORE_HIT
        else:
            _store_misses += 1
    if graph is None:
        graph = scenario.graph(size, seed=seed)
        if store is not None and store.publish(*key, graph):
            _publishes += 1
    if _maxsize > 0:
        _cache[key] = graph
        while len(_cache) > _maxsize:
            _cache.popitem(last=False)
    return graph, source


def stats() -> Dict[str, int]:
    """Hit/miss/size counters (process-local, for tests and reports)."""
    return {"hits": _hits, "misses": _misses, "size": len(_cache),
            "maxsize": _maxsize, "store_hits": _store_hits,
            "store_misses": _store_misses, "publishes": _publishes}


def clear() -> None:
    """Drop every cached graph and reset the counters."""
    global _hits, _misses, _store_hits, _store_misses, _publishes
    _cache.clear()
    _hits = 0
    _misses = 0
    _store_hits = 0
    _store_misses = 0
    _publishes = 0


def configure(maxsize: int) -> None:
    """Set the LRU capacity (0 disables caching); clears the cache.

    Clamped to >= 0 -- the same clamp workers apply when they read
    :data:`CACHE_SIZE_ENV` -- so parent and worker capacities (and the
    manifest's ``effective_maxsize``) can never disagree.  Also exports
    the env var so worker processes spawned after this call size their
    LRUs the same way.
    """
    global _maxsize
    _maxsize = max(0, int(maxsize))
    os.environ[CACHE_SIZE_ENV] = str(_maxsize)
    clear()


def effective_maxsize() -> int:
    """The LRU capacity in force (recorded in run manifests)."""
    return _maxsize


def configure_store(root: "Optional[str | Path]") -> None:
    """Point the chain at an on-disk graph store (None disconnects it).

    Process-wide, like :func:`configure` -- and exported via
    :data:`STORE_DIR_ENV` so pool workers started afterwards resolve
    the same store whether the pool forks or spawns.
    """
    global _store, _store_probed
    if root is None:
        _store = None
        os.environ.pop(STORE_DIR_ENV, None)
    else:
        from repro.store.graphs import GraphStore

        _store = GraphStore(root)
        os.environ[STORE_DIR_ENV] = str(root)
    _store_probed = True


def effective_store() -> Optional["GraphStore"]:
    """The connected graph store, resolving :data:`STORE_DIR_ENV` lazily.

    Worker processes never call :func:`configure_store` themselves;
    their first cell lands here and picks the store up from the
    environment the parent exported.
    """
    global _store, _store_probed
    if not _store_probed:
        root = os.environ.get(STORE_DIR_ENV)
        if root:
            from repro.store.graphs import GraphStore

            _store = GraphStore(root)
        _store_probed = True
    return _store
