"""Graph decompositions: MPX, LDC, Baswana-Sen (+ pruning, ensembles)."""

from repro.decomposition.baswana_sen import (
    BaswanaSenHierarchy,
    HierarchyLevel,
    build_baswana_sen,
    verify_hierarchy,
)
from repro.decomposition.ensemble import (
    build_ensemble,
    cluster_edge_multiplicity,
    ensemble_size,
    partition_batches,
)
from repro.decomposition.ldc import LDCDecomposition, build_ldc, verify_ldc
from repro.decomposition.mpx import Clustering, MPXMachine, run_mpx, shift_cap
from repro.decomposition.pruning import (
    build_pruned_hierarchy,
    cluster_edge_probability,
    max_proper_subtree,
    prune_hierarchy,
    subtree_threshold,
)

__all__ = [
    "BaswanaSenHierarchy", "Clustering", "HierarchyLevel",
    "LDCDecomposition", "MPXMachine", "build_baswana_sen", "build_ensemble",
    "build_ldc", "build_pruned_hierarchy", "cluster_edge_multiplicity",
    "cluster_edge_probability", "ensemble_size", "max_proper_subtree",
    "partition_batches", "prune_hierarchy", "run_mpx", "shift_cap",
    "subtree_threshold", "verify_hierarchy", "verify_ldc",
]
