"""Property-based tests (hypothesis) on the core data structures and
invariants: metrics algebra, payload sizing, transport delivery,
aggregation idempotence, decomposition partitions, and end-to-end BFS
correctness on random graphs."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.reference import bfs_distances, unweighted_apsp
from repro.congest import Metrics, payload_words, run_machines
from repro.congest.metrics import undirected
from repro.core.aggregation import check_idempotent
from repro.decomposition import build_baswana_sen, run_mpx, verify_hierarchy
from repro.graphs import from_edges, gnp
from repro.primitives import (
    BFSMachine,
    Packet,
    aggregate_keyed_min,
    route_packets,
)

settings.register_profile(
    "repro", deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def connected_graphs(draw, max_n: int = 18):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.05, max_value=0.6))
    return gnp(n, p, seed=seed)


payloads = st.recursive(
    st.one_of(st.integers(-1000, 1000), st.booleans(),
              st.text(max_size=4), st.none()),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3),
        st.dictionaries(st.integers(0, 9), children, max_size=3)),
    max_leaves=8)


# ----------------------------------------------------------------------
# payload_words
# ----------------------------------------------------------------------

@given(payloads)
def test_payload_words_nonnegative_and_stable(p):
    w = payload_words(p)
    assert w >= 0
    assert payload_words(p) == w  # deterministic


@given(payloads, payloads)
def test_payload_words_subadditive_for_tuples(a, b):
    combined = payload_words((a, b))
    assert combined <= payload_words(a) + payload_words(b) + 1
    assert combined >= max(payload_words(a), payload_words(b))


# ----------------------------------------------------------------------
# Metrics algebra
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                          st.integers(1, 4)), max_size=30))
def test_metrics_delta_inverts_merge(sends):
    m = Metrics()
    for u, v, w in sends:
        if u != v:
            m.record_send(u, v, w)
    snap = m.snapshot()
    extra = [(1, 2, 3), (0, 4, 1)]
    for u, v, w in extra:
        m.record_send(u, v, w)
    delta = m.delta_since(snap)
    assert delta.messages == len(extra)
    restored = snap.snapshot()
    restored.merge(delta)
    assert restored.messages == m.messages
    assert restored.words == m.words
    assert restored.edge_congestion == m.edge_congestion


@given(st.integers(0, 3), st.integers(0, 3))
def test_undirected_key_symmetric(u, v):
    assert undirected(u, v) == undirected(v, u)


# ----------------------------------------------------------------------
# Aggregation (Definition 3.1)
# ----------------------------------------------------------------------

bfs_messages = st.lists(
    st.tuples(st.integers(0, 9),
              st.dictionaries(st.integers(0, 5),
                              st.tuples(st.integers(0, 20),
                                        st.integers(0, 9)),
                              min_size=1, max_size=4)),
    min_size=0, max_size=8)


@given(bfs_messages)
def test_keyed_min_aggregation_idempotent(messages):
    assert check_idempotent(aggregate_keyed_min, messages)


@given(bfs_messages)
def test_keyed_min_keeps_minima(messages):
    merged = aggregate_keyed_min(messages)
    seen = {}
    for _src, payload in messages:
        for key, record in payload.items():
            if key not in seen or record < seen[key]:
                seen[key] = record
    if not messages:
        assert merged == []
    else:
        assert merged[0][1] == seen


@given(bfs_messages)
def test_keyed_min_order_invariant(messages):
    forward = aggregate_keyed_min(messages)
    backward = aggregate_keyed_min(list(reversed(messages)))
    assert forward == backward


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------

@given(connected_graphs(max_n=12), st.integers(0, 10_000),
       st.integers(1, 12))
def test_transport_delivers_every_packet(g, seed, n_packets):
    import random
    rng = random.Random(seed)
    apsp = unweighted_apsp(g)
    packets = []
    for i in range(n_packets):
        a = rng.randrange(g.n)
        b = rng.randrange(g.n)
        # Build a shortest path a -> b.
        path = [a]
        while path[-1] != b:
            cur = path[-1]
            nxt = min(u for u in g.neighbors(cur)
                      if apsp[u][b] == apsp[cur][b] - 1)
            path.append(nxt)
        packets.append(Packet(path=tuple(path), payload=("p", i)))
    deliveries, metrics = route_packets(g, packets)
    assert len(deliveries) == n_packets
    assert metrics.messages == sum(len(p.path) - 1 for p in packets)
    got = sorted(d.payload[1] for d in deliveries)
    assert got == list(range(n_packets))


# ----------------------------------------------------------------------
# Decompositions
# ----------------------------------------------------------------------

@given(connected_graphs(max_n=16), st.integers(0, 500))
def test_mpx_is_partition_with_connected_trees(g, seed):
    clustering = run_mpx(g, beta=0.5, seed=seed)
    assert set(clustering.center_of) == set(g.nodes())
    for v in g.nodes():
        p = clustering.parent[v]
        if p is not None:
            assert p in g.neighbors(v)
            assert clustering.center_of[p] == clustering.center_of[v]


@given(connected_graphs(max_n=14), st.sampled_from([1.0, 0.5, 0.34]),
       st.integers(0, 200))
def test_baswana_sen_properties_random(g, eps, seed):
    h = build_baswana_sen(g, eps, seed=seed)
    verify_hierarchy(g, h)


# ----------------------------------------------------------------------
# End-to-end BFS
# ----------------------------------------------------------------------

@given(connected_graphs(max_n=14), st.integers(0, 100))
def test_bfs_machine_matches_reference_random(g, seed):
    root = seed % g.n
    execution = run_machines(g, lambda info: BFSMachine(info, root=root),
                             seed=seed)
    ref = bfs_distances(g, root)
    for v in g.nodes():
        assert execution.outputs[v][0] == ref[v]
