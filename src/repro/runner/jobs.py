"""Picklable job specs and cell results for the parallel sweep engine.

A sweep over the scenario x algorithm matrix decomposes into independent
*cells*, each fully described by ``(scenario, algorithm, size, seed)``.
Because every scenario build is seed-deterministic (see
:mod:`repro.scenarios.registry`), a :class:`JobSpec` is all a worker
process needs: it rebuilds the graph locally and runs the differential
oracle -- no graphs or results cross the process boundary, only these
small records.

Cell identity is *content-addressed*: :func:`cell_key` hashes the
canonical JSON of the four coordinates, so the same cell gets the same
key in every process, run, and revision -- the handle the run store uses
to skip already-recorded cells on resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

CellIdentity = Tuple[str, str, int, int]

# Record fields that vary between executions of the same cell at the
# same revision.  Single source of the "canonical payload" rule shared
# by DifferentialRecord.canonical_dict and CellResult.canonical_record.
# ``graph_source`` is where the cell's graph came from (built / lru /
# store), ``oracle_source`` where its baseline came from (computed /
# lru / store / none), and ``decomposition_source`` where its input
# decomposition snapshot came from (same vocabulary) -- provenance that
# depends on cache and store state, never on the cell's deterministic
# payload.
NONDETERMINISTIC_FIELDS = ("wall_time", "graph_source", "oracle_source",
                           "decomposition_source")


def error_headline(error: Optional[str]) -> str:
    """The last non-empty line of a traceback/error text ('' if none)."""
    lines = (error or "").strip().splitlines()
    return lines[-1] if lines else ""


def cell_key(scenario: str, algorithm: str, size: int, seed: int) -> str:
    """The content-addressed cell id: stable across processes and runs."""
    payload = json.dumps(
        {"scenario": scenario, "algorithm": algorithm,
         "size": size, "seed": seed},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class JobSpec:
    """One sweep cell, small enough to pickle to a worker process.

    ``delay`` is fault-injection instrumentation for the timeout tests:
    the executor sleeps that many seconds before running the cell, which
    lets tests exercise the per-cell timeout path with real worker
    processes.  It is excluded from the cell key -- identity is the four
    matrix coordinates only.
    """

    scenario: str
    algorithm: str
    size: int
    seed: int = 0
    delay: float = 0.0

    @property
    def identity(self) -> CellIdentity:
        return (self.scenario, self.algorithm, self.size, self.seed)

    @property
    def key(self) -> str:
        return cell_key(self.scenario, self.algorithm, self.size, self.seed)

    def as_dict(self) -> Dict[str, Any]:
        return {"scenario": self.scenario, "algorithm": self.algorithm,
                "size": self.size, "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        return cls(scenario=payload["scenario"],
                   algorithm=payload["algorithm"],
                   size=payload["size"], seed=payload["seed"])


# Cell execution statuses.
DONE = "done"        # the differential record was produced (pass or fail)
TIMEOUT = "timeout"  # the cell exceeded the per-cell wall-time budget
ERROR = "error"      # the cell raised (bug or crashed worker)


@dataclass
class CellResult:
    """Outcome of executing one :class:`JobSpec`.

    ``record`` is the ``DifferentialRecord.as_dict()`` payload when
    ``status == "done"`` and ``None`` otherwise; keeping it as a plain
    dict makes the result picklable and JSONL-serializable as-is.

    ``attempts`` counts how many times the cell was executed: 1 for a
    first-try outcome, more when the executor's retry budget re-queued
    a timed-out or crashed cell (``wall_time`` is the total across
    attempts).
    """

    spec: JobSpec
    status: str
    wall_time: float
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 1

    @property
    def passed(self) -> bool:
        return (self.status == DONE and self.record is not None
                and bool(self.record.get("passed")))

    @property
    def key(self) -> str:
        return self.spec.key

    def canonical_record(self) -> Optional[Dict[str, Any]]:
        """The deterministic part of the record (wall clock stripped)."""
        if self.record is None:
            return None
        payload = dict(self.record)
        for field in NONDETERMINISTIC_FIELDS:
            payload.pop(field, None)
        return payload

    def as_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "spec": self.spec.as_dict(),
                "status": self.status, "wall_time": self.wall_time,
                "record": self.record, "error": self.error,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellResult":
        return cls(spec=JobSpec.from_dict(payload["spec"]),
                   status=payload["status"],
                   wall_time=payload["wall_time"],
                   record=payload.get("record"),
                   error=payload.get("error"),
                   attempts=payload.get("attempts", 1))


def build_specs(names: Optional[Iterable[str]] = None, *,
                sizes: Optional[Sequence[int]] = None,
                seeds: Sequence[int] = (0,)) -> List[JobSpec]:
    """The sweep work-list, in the canonical deterministic order.

    Mirrors :func:`repro.testing.sweep`: scenarios sorted by name, each
    at its tier-1 ``default_size`` unless explicit ``sizes`` are given,
    under every bound algorithm, for every caller seed.
    """
    from repro.scenarios import all_scenarios, get_scenario

    scenarios = (all_scenarios() if names is None
                 else [get_scenario(name) for name in names])
    specs: List[JobSpec] = []
    for scenario in scenarios:
        run_sizes = ([scenario.default_size] if sizes is None
                     else list(sizes))
        for size in run_sizes:
            for algorithm in scenario.algorithms:
                for seed in seeds:
                    specs.append(JobSpec(scenario.name, algorithm,
                                         size, seed))
    return specs
