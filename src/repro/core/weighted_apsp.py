"""Theorem 1.1: weighted APSP with Õ(n²) messages and Õ(n²) rounds.

The paper obtains this by plugging a round-efficient BCONGEST weighted
APSP algorithm into the Theorem 2.1 simulation.  Here the simulated
algorithm is the multi-source pipelined Bellman-Ford collection (see
DESIGN.md, substitution 1): n sources spread by shared random delays
from [1, n], each flooding improved distance estimates; it is exact on
directed weights and negative weights (no negative cycles), covering the
full scope of the theorem's statement.

Driver steps:

1. build the global tree and disseminate the shared random delays (the
   shared-randomness implementation of §3.3, metered: Õ(n) rounds and
   Õ(n · n) messages);
2. run the Theorem 2.1 simulation of the Bellman-Ford collection;
3. assemble per-node distance vectors.

Benchmark E2 compares the resulting message count against the direct
(round-optimal, message-heavy) execution of the same collection, which
costs Theta~(n * m) messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.congest.metrics import Metrics
from repro.congest.profile import mark_phase
from repro.core.bcongest_sim import SimulationReport, simulate_bcongest
from repro.kernels import config as kernels
from repro.graphs.graph import Graph
from repro.primitives.bellman_ford import BellmanFordCollectionMachine
from repro.primitives.global_tree import build_global_tree, disseminate

INF = float("inf")


@dataclass
class APSPResult:
    """Distance matrix plus the full cost breakdown."""

    dist: List[List[float]]
    parents: Dict[int, Dict[int, Optional[int]]]
    metrics: Metrics
    report: Optional[SimulationReport]
    detail: Dict[str, int]

    def distance(self, u: int, v: int) -> float:
        return self.dist[u][v]

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Reconstruct a shortest source -> target path from the parent
        pointers the distributed execution left at each node (node v
        knows its predecessor on a shortest path from each source).

        Returns None when target is unreachable or parents were not
        collected for this regime.
        """
        if source == target:
            return [source]
        if self.dist[source][target] == INF or not self.parents:
            return None
        path = [target]
        current = target
        while current != source:
            parent = self.parents.get(current, {}).get(source)
            if parent is None:
                return None
            path.append(parent)
            current = parent
            if len(path) > len(self.dist) + 1:  # pragma: no cover
                raise RuntimeError("parent pointers contain a cycle")
        path.reverse()
        return path


def make_delays(n: int, seed: int, spread: Optional[int] = None) -> Dict[int, int]:
    """Shared random delays for the n sources, uniform on [1, spread]."""
    from repro.congest.network import stable_seed
    rng = random.Random(stable_seed("delays", seed))
    spread = spread or max(1, n)
    return {j: rng.randint(1, spread) for j in range(n)}


def weighted_apsp(graph: Graph, *, seed: int = 0,
                  message_words: Optional[int] = None) -> APSPResult:
    """Message-optimal weighted APSP (Theorem 1.1).

    ``message_words`` bounds the simulated algorithm's per-broadcast
    payload; the default scales as O(log² n) which the random delays
    guarantee w.h.p. (each broadcast carries the sources improved in one
    round).
    """
    n = graph.n
    total = Metrics()

    # Shared randomness: the leader draws the delays and streams them
    # down its BFS tree (§3.3's implementation, metered literally).
    mark_phase("shared-randomness")
    tree = build_global_tree(graph, seed=seed)
    total.merge(tree.metrics)
    delays = make_delays(n, seed)
    stream = [(j, delays[j]) for j in range(n)]
    _received, metrics = disseminate(graph, tree, stream, seed=seed)
    total.merge(metrics)

    sources = {j: j for j in range(n)}
    if message_words is None:
        import math
        message_words = max(24, 6 * int(math.log2(max(n, 2))) ** 2)

    def factory(info):
        return BellmanFordCollectionMachine(
            info, sources=sources, delays=delays)

    plan = None
    if kernels.engine_ready():
        from repro.kernels import relaxation
        plan = relaxation.bcongest_plan(graph, delays)
        if plan is not None:
            kernels.note_engine("kernel:bellman-ford")
    report = simulate_bcongest(graph, factory, seed=seed,
                               message_words=message_words, plan=plan)
    total.merge(report.total)

    dist = [[INF] * n for _ in range(n)]
    parents: Dict[int, Dict[int, Optional[int]]] = {}
    for v in graph.nodes():
        out = report.outputs[v] or {}
        parents[v] = {}
        for j, (d, parent) in out.items():
            dist[j][v] = d
            parents[v][j] = parent
    for v in graph.nodes():
        dist[v][v] = min(dist[v][v], 0)

    detail = {
        "phases": report.phases,
        "broadcasts": report.broadcasts_simulated,
        "sim_messages": report.simulation.messages,
        "pre_messages": report.preprocessing.messages,
    }
    return APSPResult(dist=dist, parents=parents, metrics=total,
                      report=report, detail=detail)


def weighted_apsp_tradeoff(graph: Graph, eps: float, *,
                           seed: int = 0) -> APSPResult:
    """EXTENSION (the paper's §4 open question): a message-time
    trade-off for *weighted* APSP.

    The ingredients already exist in the paper: the multi-source
    Bellman-Ford collection is aggregation-based (per-source idempotent
    min, Definition 3.1), so for eps in [1/2, 1] it can be fed to the
    Theorem 3.10 star simulation exactly as the BFS collection is in
    Lemma 3.22 -- same Õ(T_A n^{1-eps}) rounds / Õ(T_A n^{1+eps})
    messages conversion, with T_A = Õ(n).  For eps below 1/2 the
    depth-capped batching of Lemma 3.23 does not transfer (a weighted
    shortest path can have many hops but small weight, so a hop cap is
    not a distance cap and the landmark argument needs hop-restricted
    distances); there we fall back to the message-optimal end
    (Theorem 1.1), which is the paper's own eps ~ 0 point.

    The extension is exercised by ``tests/test_extension_weighted.py``
    and measured in benchmark E13.
    """
    if not 0 <= eps <= 1:
        raise ValueError("eps must lie in [0, 1]")
    if eps < 0.5:
        return weighted_apsp(graph, seed=seed)

    import math

    from repro.core.tradeoff_sim_star import simulate_aggregation_star
    from repro.decomposition.pruning import build_pruned_hierarchy

    n = graph.n
    total = Metrics()
    tree = build_global_tree(graph, seed=seed)
    total.merge(tree.metrics)
    delays = make_delays(n, seed)
    _received, metrics = disseminate(
        graph, tree, [(j, delays[j]) for j in range(n)], seed=seed)
    total.merge(metrics)
    hierarchy = build_pruned_hierarchy(graph, eps, seed=seed + 17)
    total.merge(hierarchy.metrics)

    sources = {j: j for j in range(n)}

    def factory(info):
        return BellmanFordCollectionMachine(
            info, sources=sources, delays=delays)

    budget = max(48, 12 * int(math.log2(max(n, 2))) ** 2)
    report = simulate_aggregation_star(
        graph, hierarchy, factory,
        aggregate=BellmanFordCollectionMachine.aggregate,
        seed=seed, message_words=budget,
        include_tree_preprocessing=False)
    total.merge(report.total)

    dist = [[INF] * n for _ in range(n)]
    parents: Dict[int, Dict[int, Optional[int]]] = {}
    for v in graph.nodes():
        out = report.outputs[v] or {}
        parents[v] = {}
        for j, (d, parent) in out.items():
            dist[j][v] = d
            parents[v][j] = parent
    for v in graph.nodes():
        dist[v][v] = min(dist[v][v], 0)
    return APSPResult(
        dist=dist, parents=parents, metrics=total, report=None,
        detail={
            "phases": report.phases,
            "broadcasts": report.broadcasts_simulated,
            "cluster_congestion": report.cluster_edge_congestion,
            "mode": report.mode,
        })
