"""Metering of rounds, messages, broadcasts, and per-edge congestion.

Every quantity the paper reasons about is counted here:

* ``rounds`` -- the number of synchronous rounds consumed (§1.1.1).
* ``messages`` -- total messages sent by all nodes over the execution.
* ``broadcasts`` -- broadcast complexity of a BCONGEST execution: the
  number of broadcast *operations*, each of which costs deg(v) messages
  but counts once here (§1.1.2).
* ``edge_congestion`` -- per-undirected-edge message counts, the quantity
  bounded by the congestion + dilation framework (§1.4.1) and by the
  congestion-smoothing lemma (Lemma 3.8).

Metrics objects are plain accumulators; they can be snapshotted, diffed,
and merged so that a driver can attribute costs to phases (preprocessing
vs. simulation, send vs. receive steps, and so on).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple

Edge = Tuple[Hashable, Hashable]


def undirected(u: Hashable, v: Hashable) -> Edge:
    """Canonical key for the undirected edge {u, v}."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Metrics:
    """Accumulated costs of a (partial) CONGEST execution."""

    rounds: int = 0
    messages: int = 0
    broadcasts: int = 0
    words: int = 0
    max_message_words: int = 0
    faults_dropped: int = 0
    faults_duplicated: int = 0
    nodes_crashed: int = 0
    edge_congestion: Counter = field(default_factory=Counter)
    # Message-size histogram (size in words -> message count).  Executions
    # reuse a handful of payload shapes, so this stays tiny; it is what
    # makes window maxima exact: ``delta_since`` diffs the histograms and
    # takes the max size actually seen *within* the window, instead of
    # copying the execution-wide running max into every phase delta.
    message_sizes: Counter = field(default_factory=Counter)

    def record_send(self, u: Hashable, v: Hashable, size_words: int) -> None:
        """Record one message of ``size_words`` words on edge (u, v)."""
        self.messages += 1
        self.words += size_words
        self.max_message_words = max(self.max_message_words, size_words)
        self.edge_congestion[undirected(u, v)] += 1
        self.message_sizes[size_words] += 1

    def record_broadcast(self) -> None:
        """Record one broadcast operation (message costs counted separately)."""
        self.broadcasts += 1

    def record_fault_drop(self) -> None:
        """Record one injected delivery drop (lost message or dead link)."""
        self.faults_dropped += 1

    def record_fault_duplicate(self) -> None:
        """Record one injected duplicate delivery."""
        self.faults_duplicated += 1

    def record_node_crash(self) -> None:
        """Record one node crashing (once per node, at its crash round)."""
        self.nodes_crashed += 1

    def record_broadcast_sends(self, edge_keys, size_words: int) -> None:
        """Bulk-record one broadcast's messages: one per incident edge.

        Equivalent to ``record_send`` once per edge key with the same
        ``size_words``; folding the counter updates into one call is what
        makes the network's batched broadcast path cheap.
        """
        k = len(edge_keys)
        self.messages += k
        self.words += size_words * k
        if k:
            if size_words > self.max_message_words:
                self.max_message_words = size_words
            self.message_sizes[size_words] += k
        self.edge_congestion.update(edge_keys)

    @property
    def max_edge_congestion(self) -> int:
        """Maximum number of messages carried by any single edge."""
        if not self.edge_congestion:
            return 0
        return max(self.edge_congestion.values())

    def congestion_over(self, edges) -> int:
        """Maximum congestion restricted to the given edge set."""
        best = 0
        for u, v in edges:
            best = max(best, self.edge_congestion[undirected(u, v)])
        return best

    def snapshot(self) -> "Metrics":
        """A deep copy, for computing per-phase deltas."""
        out = Metrics(
            rounds=self.rounds,
            messages=self.messages,
            broadcasts=self.broadcasts,
            words=self.words,
            max_message_words=self.max_message_words,
            faults_dropped=self.faults_dropped,
            faults_duplicated=self.faults_duplicated,
            nodes_crashed=self.nodes_crashed,
        )
        out.edge_congestion = Counter(self.edge_congestion)
        out.message_sizes = Counter(self.message_sizes)
        return out

    def delta_since(self, earlier: "Metrics") -> "Metrics":
        """Costs accumulated since ``earlier`` was snapshotted.

        ``max_message_words`` is the max over the messages sent *within*
        the window (diffed out of the size histograms), so per-phase
        attribution never inherits an earlier phase's larger messages.
        """
        sizes = self.message_sizes - earlier.message_sizes
        out = Metrics(
            rounds=self.rounds - earlier.rounds,
            messages=self.messages - earlier.messages,
            broadcasts=self.broadcasts - earlier.broadcasts,
            words=self.words - earlier.words,
            max_message_words=max(sizes) if sizes else 0,
            faults_dropped=self.faults_dropped - earlier.faults_dropped,
            faults_duplicated=(self.faults_duplicated
                               - earlier.faults_duplicated),
            nodes_crashed=self.nodes_crashed - earlier.nodes_crashed,
        )
        out.edge_congestion = self.edge_congestion - earlier.edge_congestion
        out.message_sizes = sizes
        return out

    def merge(self, other: "Metrics", *, parallel: bool = False) -> None:
        """Fold ``other`` into this accumulator.

        With ``parallel=True`` round counts are combined with ``max``
        (phases that run concurrently), otherwise they add (sequential
        composition).
        """
        if parallel:
            self.rounds = max(self.rounds, other.rounds)
        else:
            self.rounds += other.rounds
        self.messages += other.messages
        self.broadcasts += other.broadcasts
        self.words += other.words
        self.max_message_words = max(self.max_message_words,
                                     other.max_message_words)
        self.faults_dropped += other.faults_dropped
        self.faults_duplicated += other.faults_duplicated
        self.nodes_crashed += other.nodes_crashed
        self.edge_congestion.update(other.edge_congestion)
        self.message_sizes.update(other.message_sizes)

    def as_dict(self) -> Dict[str, int]:
        """Summary suitable for experiment tables (drops per-edge detail).

        Fault counters appear only when any fault was injected, so the
        dict (and every record serialized from it) is byte-identical to
        the pre-fault-plane output for clean executions.
        """
        out = {
            "rounds": self.rounds,
            "messages": self.messages,
            "broadcasts": self.broadcasts,
            "words": self.words,
            "max_edge_congestion": self.max_edge_congestion,
        }
        if self.faults_dropped or self.faults_duplicated or self.nodes_crashed:
            out["faults_dropped"] = self.faults_dropped
            out["faults_duplicated"] = self.faults_duplicated
            out["nodes_crashed"] = self.nodes_crashed
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        d = self.as_dict()
        return (
            "Metrics(rounds={rounds}, messages={messages}, "
            "broadcasts={broadcasts}, max_congestion={max_edge_congestion})".format(**d)
        )
