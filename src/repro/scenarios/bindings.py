"""Algorithm bindings: how a scenario graph is run and cross-checked.

A :class:`Binding` names one algorithm family (APSP, BFS collections,
matching, covers, decompositions, spanners, hierarchies), a runner
that executes the paper's
distributed implementation on the literal CONGEST simulator, a named
sequential **oracle** (:class:`repro.baselines.oracles.OracleSpec`) the
outputs must equal, and a metered-complexity :class:`Envelope` -- the
Õ-bound the paper claims, with an explicit constant -- that the
measured rounds and messages must stay inside.

Declaring the oracle as data (rather than calling the reference inline)
is what lets the differential harness serve baselines through the
oracle cache chain (:mod:`repro.runner.oracle_cache`): each runner
accepts the resolved oracle value and only computes it itself when
called standalone (``binding.run(graph, seed)`` stays valid).  The
``cover`` binding has no sequential oracle -- its verification is
self-contained -- so its ``oracle`` is None.

The ``mpx-cover`` / ``ldc-spanner`` / ``bs-hierarchy`` bindings are the
**staged pipeline**: each declares ``decomposition="ldc"`` and consumes
the LDC snapshot as an input artifact (served through
:mod:`repro.runner.decomposition_cache`) instead of re-running MPX per
cell; the pure derivations bill the snapshot's construction cost, while
the hierarchy cell meters its own Theorem 3.4 construction on top.

The envelopes are deliberately loose (the paper's bounds hide polylog
factors and constants; ours carry an explicit safety margin on top of
measured behavior) so they catch complexity *regressions* -- an
algorithm change that quietly reverts to Theta(n*m) messages -- rather
than noise.  All runs are seed-deterministic, so a violation is a real
change in behavior, never flakiness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.baselines.oracles import INF, ORACLES, OracleSpec
from repro.baselines.reference import is_matching
from repro.core import (
    apsp_tradeoff,
    maximum_matching,
    n_bfs_trees_star,
    neighborhood_cover_direct,
    weighted_apsp,
)
from repro.graphs.graph import Graph


def _log2(n: int) -> float:
    return math.log2(max(n, 2))


@dataclass(frozen=True)
class Envelope:
    """Closed-form bounds on metered cost, as functions of (n, m)."""

    rounds: Callable[[int, int], float]
    messages: Callable[[int, int], float]
    rounds_label: str
    messages_label: str

    def evaluate(self, n: int, m: int, slack: float = 1.0) -> Dict[str, float]:
        return {"max_rounds": slack * self.rounds(n, m),
                "max_messages": slack * self.messages(n, m)}


@dataclass
class BindingResult:
    """Outcome of one scenario x binding execution."""

    ok: bool                      # every correctness check passed
    checks: Dict[str, bool]
    metrics: Dict[str, int]       # rounds / messages / broadcasts / words...
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Binding:
    """One algorithm family's runner + oracle + complexity envelope.

    ``run(graph, seed, oracle=None)``: the resolved oracle value (from
    the cache chain) is passed by the differential harness; ``None``
    makes the runner compute its own baseline inline, so direct calls
    keep working without the chain.  ``oracle`` (the spec) is ``None``
    for self-verifying bindings.

    ``decomposition`` names the decomposition snapshot the binding
    consumes as an input artifact (today: ``"ldc"``), or ``None`` for
    bindings outside the staged pipeline.  Consumers additionally
    accept ``run(..., decomposition=snapshot)``: the harness serves the
    snapshot through :mod:`repro.runner.decomposition_cache` (LRU ->
    store -> compute), and again ``None`` means compute inline.
    """

    name: str
    family: str
    description: str
    run: Callable[..., BindingResult]
    envelope: Envelope
    oracle: Optional[OracleSpec] = None
    decomposition: Optional[str] = None


def _resolve(spec: OracleSpec, g: Graph, seed: int, oracle: Any) -> Any:
    """The baseline value: as handed in by the chain, or computed here."""
    return spec.compute(g, seed) if oracle is None else oracle


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

def _run_apsp_unweighted(g: Graph, seed: int,
                         oracle: Any = None) -> BindingResult:
    result = apsp_tradeoff(g, 0.0, seed=seed)
    ref = _resolve(ORACLES["unweighted-apsp"], g, seed, oracle)
    exact = result.dist == ref
    return BindingResult(
        ok=exact, checks={"dist_equals_oracle": exact},
        metrics=result.metrics.as_dict(),
        detail={"regime": result.regime})


def _run_apsp_weighted(g: Graph, seed: int,
                       oracle: Any = None) -> BindingResult:
    result = weighted_apsp(g, seed=seed)
    ref = _resolve(ORACLES["weighted-apsp"], g, seed, oracle)
    exact = result.dist == ref
    return BindingResult(
        ok=exact, checks={"dist_equals_oracle": exact},
        metrics=result.metrics.as_dict())


def _run_bfs_collection(g: Graph, seed: int,
                        oracle: Any = None) -> BindingResult:
    result = n_bfs_trees_star(g, 1.0, seed=seed)
    # Shares the unweighted-apsp oracle matrix: row [root][v] is the
    # hop distance, INF where the root's BFS never reaches v.
    ref = _resolve(ORACLES["unweighted-apsp"], g, seed, oracle)
    exact = True
    for root in g.nodes():
        row = ref[root]
        for v in g.nodes():
            record = result.trees[v].get(root)
            got = record[0] if record is not None else None
            want = None if row[v] == INF else row[v]
            if got != want:
                exact = False
                break
        if not exact:
            break
    return BindingResult(
        ok=exact, checks={"all_bfs_trees_equal_oracle": exact},
        metrics=result.metrics.as_dict())


def _run_matching(g: Graph, seed: int, oracle: Any = None) -> BindingResult:
    result = maximum_matching(g, seed=seed)
    valid = is_matching(g, result.matching)
    optimal = result.size == _resolve(ORACLES["matching-size"], g, seed,
                                      oracle)
    return BindingResult(
        ok=valid and optimal,
        checks={"is_matching": valid, "size_equals_hopcroft_karp": optimal},
        metrics=result.metrics.as_dict(),
        detail={"size": result.size, "s_bound": result.s_bound})


def _run_cover(g: Graph, seed: int, oracle: Any = None) -> BindingResult:
    k, w = 2, 2
    result = neighborhood_cover_direct(g, k, w, seed=seed)
    try:
        stats = result.cover.verify(g)
        padded = True
    except AssertionError:
        stats = {"max_depth": -1, "max_overlap": -1,
                 "depth_bound": 0, "overlap_bound": 0}
        padded = False
    depth_ok = padded and stats["max_depth"] <= stats["depth_bound"]
    overlap_ok = padded and stats["max_overlap"] <= stats["overlap_bound"]
    return BindingResult(
        ok=padded and depth_ok and overlap_ok,
        checks={"every_vertex_padded": padded,
                "depth_within_bound": depth_ok,
                "overlap_within_bound": overlap_ok},
        metrics=result.metrics.as_dict(),
        detail={"k": k, "w": w, **{key: float(val)
                                   for key, val in stats.items()}})


def _ldc_input(g: Graph, seed: int, decomposition: Any) -> Any:
    """The LDC snapshot a staged runner consumes (inline when unserved)."""
    if decomposition is not None:
        return decomposition
    from repro.decomposition.ldc import build_ldc
    from repro.decomposition.pipeline import ldc_snapshot

    return ldc_snapshot(build_ldc(g, seed=seed))


def _run_ldc(g: Graph, seed: int, oracle: Any = None,
             decomposition: Any = None) -> BindingResult:
    """Lemma 2.4: the distributed (MPX-derived) LDC decomposition.

    The cheap Definition 2.3 predicates (clusters partition V, every
    neighboring cluster is covered by an F-edge) are checked inline on
    the realized decomposition; the expensive exhaustive realization --
    the per-cluster strong-diameter check -- comes from the
    ``ldc-reference`` oracle, which recomputes the seed-deterministic
    decomposition sequentially.  ``realization_matches_reference`` is
    the differential: any drift between the distributed run and the
    (possibly cached) reference realization flips it.

    This is the pipeline's *producer* cell: it consumes (and thereby
    publishes, on a cold store) the same snapshot the downstream
    cover/spanner/hierarchy cells read, so its checks run on exactly
    the artifact they inherit.
    """
    from repro.decomposition.mpx import shift_cap
    from repro.decomposition.pipeline import snapshot_out_edges

    snapshot = _ldc_input(g, seed, decomposition)
    ref = _resolve(ORACLES["ldc-reference"], g, seed, oracle)
    center_of = snapshot["center_of"]
    out_edges = snapshot_out_edges(snapshot)
    partition = set(center_of) == set(g.nodes())
    f_ok = True
    for v, edges in out_edges.items():
        covered = {center_of[u] for (_v, u) in edges}
        needed = {center_of[u] for u in g.neighbors(v)
                  if center_of[u] != center_of[v]}
        if not needed <= covered or any(
                u not in g.neighbors(v) or center_of[u] == center_of[v]
                for (_v, u) in edges):
            f_ok = False
            break
    d = max((len(edges) for edges in out_edges.values()), default=0)
    clusters = snapshot["clusters"]
    verified = bool(ref["valid"])
    matches = verified and d == ref["d"] and clusters == ref["clusters"]
    # Lemma 2.4 realization bounds: strong diameter <= 2 * max shift
    # (the MPX cap), out-degree = #neighboring clusters = O(log n)
    # w.h.p.; both carry the usual explicit safety margin.
    r_bound = 4.0 * shift_cap(g.n, snapshot["beta"])
    d_bound = 12.0 * _log2(g.n) + 8
    r_ok = verified and ref["r"] <= r_bound
    d_ok = verified and d <= d_bound
    checks = {
        "clusters_partition_v": partition,
        "f_edges_cover_neighboring_clusters": f_ok,
        "definition_verified_by_reference": verified,
        "realization_matches_reference": matches,
        "strong_diameter_within_bound": r_ok,
        "out_degree_within_bound": d_ok,
    }
    return BindingResult(
        ok=all(checks.values()), checks=checks,
        metrics=dict(snapshot["metrics"]),
        detail={"r": ref["r"], "d": d, "clusters": clusters,
                "beta": snapshot["beta"],
                "r_bound": r_bound, "d_bound": d_bound})


def _run_mpx_cover(g: Graph, seed: int, oracle: Any = None,
                   decomposition: Any = None) -> BindingResult:
    """Pipeline stage: the padded neighborhood cover over the snapshot.

    Derivation is pure per-node work on the input artifact (each
    F-edge source joins the set its edge lands in), so the cell bills
    the MPX construction cost carried by the snapshot; the cover's
    padding/connectivity is verified exhaustively here and cross-checked
    against the sequentially recomputed ``mpx-cover`` oracle stats.
    """
    from repro.decomposition.mpx import shift_cap
    from repro.decomposition.pipeline import (
        derive_mpx_cover,
        verify_mpx_cover,
    )

    snapshot = _ldc_input(g, seed, decomposition)
    cover = derive_mpx_cover(snapshot)
    try:
        stats = verify_mpx_cover(g, cover, snapshot)
        padded = True
    except AssertionError:
        stats = {"clusters": -1, "max_overlap": -1, "radius": -1}
        padded = False
    ref = _resolve(ORACLES["mpx-cover"], g, seed, oracle)
    verified = bool(ref["valid"])
    matches = padded and verified and all(
        stats[name] == ref[name]
        for name in ("clusters", "max_overlap", "radius"))
    # Cover bounds inherited from Lemma 2.4: radius <= r + 1 (one
    # F-edge hop past the cluster radius), overlap <= 1 + d (home
    # cluster plus one per outgoing F-edge target).
    r_bound = 4.0 * shift_cap(g.n, snapshot["beta"]) + 1
    overlap_bound = 12.0 * _log2(g.n) + 9
    radius_ok = padded and stats["radius"] <= r_bound
    overlap_ok = padded and stats["max_overlap"] <= overlap_bound
    checks = {
        "neighborhoods_padded_and_connected": padded,
        "cover_verified_by_reference": verified,
        "realization_matches_reference": matches,
        "radius_within_bound": radius_ok,
        "overlap_within_bound": overlap_ok,
    }
    return BindingResult(
        ok=all(checks.values()), checks=checks,
        metrics=dict(snapshot["metrics"]),
        detail={"clusters": stats["clusters"],
                "max_overlap": stats["max_overlap"],
                "radius": stats["radius"],
                "r_bound": r_bound, "overlap_bound": overlap_bound})


def _run_ldc_spanner(g: Graph, seed: int, oracle: Any = None,
                     decomposition: Any = None) -> BindingResult:
    """Pipeline stage: the cluster spanner over the snapshot.

    Tree edges + F-edges, again pure derivation billed at the
    snapshot's construction cost; verified exhaustively (subgraph,
    connectivity, exact max stretch) and cross-checked against the
    ``ldc-spanner`` oracle.
    """
    from repro.decomposition.mpx import shift_cap
    from repro.decomposition.pipeline import (
        derive_ldc_spanner,
        verify_ldc_spanner,
    )

    snapshot = _ldc_input(g, seed, decomposition)
    edges = derive_ldc_spanner(snapshot)
    try:
        stats = verify_ldc_spanner(g, edges)
        subgraph = True
    except AssertionError:
        stats = {"size": -1, "stretch": -1}
        subgraph = False
    ref = _resolve(ORACLES["ldc-spanner"], g, seed, oracle)
    verified = bool(ref["valid"])
    matches = subgraph and verified and all(
        stats[name] == ref[name] for name in ("size", "stretch"))
    # Stretch inherited from Lemma 2.4: same cluster reaches through
    # the tree (<= 2r), neighboring clusters through one F-edge plus a
    # tree walk (<= 2r + 1).
    stretch_bound = 8.0 * shift_cap(g.n, snapshot["beta"]) + 1
    stretch_ok = subgraph and stats["stretch"] <= stretch_bound
    checks = {
        "spanner_subgraph_preserves_connectivity": subgraph,
        "spanner_verified_by_reference": verified,
        "realization_matches_reference": matches,
        "stretch_within_bound": stretch_ok,
    }
    return BindingResult(
        ok=all(checks.values()), checks=checks,
        metrics=dict(snapshot["metrics"]),
        detail={"size": stats["size"], "stretch": stats["stretch"],
                "stretch_bound": stretch_bound})


def _run_bs_hierarchy(g: Graph, seed: int, oracle: Any = None,
                      decomposition: Any = None) -> BindingResult:
    """Pipeline stage: the LDC-seeded Baswana-Sen hierarchy.

    The only downstream cell that *runs the simulator again*: the
    hierarchy construction (Theorem 3.4) is metered CONGEST work on
    top of the input snapshot, seeded at level 0 by the LDC clustering,
    so the cell bills its own construction cost rather than the
    snapshot's.  Verified exhaustively (partition, tree structure,
    edge serving) and cross-checked against the ``bs-hierarchy``
    oracle.
    """
    from repro.decomposition.baswana_sen import (
        build_baswana_sen,
        verify_hierarchy,
    )
    from repro.decomposition.mpx import shift_cap
    from repro.decomposition.pipeline import BS_EPS

    snapshot = _ldc_input(g, seed, decomposition)
    hierarchy = build_baswana_sen(g, BS_EPS, seed=seed, base=snapshot)
    try:
        stats = verify_hierarchy(g, hierarchy)
        structured = True
    except AssertionError:
        stats = {"levels": -1, "max_radius": -1, "f_edges": -1,
                 "cluster_edges": -1, "max_f_degree": -1}
        structured = False
    ref = _resolve(ORACLES["bs-hierarchy"], g, seed, oracle)
    verified = bool(ref["valid"])
    matches = structured and verified and all(
        stats[name] == ref[name]
        for name in ("levels", "max_radius", "f_edges", "cluster_edges",
                     "max_f_degree"))
    # Cluster radius <= kappa + r: level i adds at most one hop per
    # level on top of the base radius (Theorem 3.3(a), offset by the
    # seeded level-0 clustering).
    radius_bound = 4.0 * shift_cap(g.n, snapshot["beta"]) + hierarchy.kappa
    radius_ok = structured and stats["max_radius"] <= radius_bound
    checks = {
        "hierarchy_partitions_and_serves_edges": structured,
        "hierarchy_verified_by_reference": verified,
        "realization_matches_reference": matches,
        "radius_within_bound": radius_ok,
    }
    return BindingResult(
        ok=all(checks.values()), checks=checks,
        metrics=hierarchy.metrics.as_dict(),
        detail={"levels": stats["levels"],
                "max_radius": stats["max_radius"],
                "f_edges": stats["f_edges"],
                "cluster_edges": stats["cluster_edges"],
                "kappa": hierarchy.kappa,
                "radius_bound": radius_bound})


# ---------------------------------------------------------------------------
# Envelopes.  Constants calibrated against the measured matrix (see
# tests/test_differential_oracles.py) with a generous margin: the point
# is to catch a complexity-class regression, not to pin exact counts.
# ---------------------------------------------------------------------------

_APSP_ENVELOPE = Envelope(
    rounds=lambda n, m: 8 * n * n * _log2(n),
    messages=lambda n, m: 8 * n * n * _log2(n) ** 2,
    rounds_label="8·n²·log n",
    messages_label="8·n²·log²n",
)

_BFS_STAR_ENVELOPE = Envelope(
    rounds=lambda n, m: 8 * n * n * _log2(n),
    messages=lambda n, m: 8 * n * n * _log2(n) ** 2,
    rounds_label="8·n²·log n",
    messages_label="8·n²·log²n",
)

_MATCHING_ENVELOPE = Envelope(
    rounds=lambda n, m: 10 * n * n * _log2(n),
    messages=lambda n, m: 10 * n * n * _log2(n) ** 2,
    rounds_label="10·n²·log n",
    messages_label="10·n²·log²n",
)

# Direct BCONGEST cover: Õ(n^{1/k}) ball-carving repetitions of cost
# O(m) messages each, every repetition running in its own O(k·w·log n)
# round window.  The additive +8 inside the rounds bound floors the
# formula at tiny n, where the constant per-repetition window dominates
# the asymptotic term.
_COVER_ENVELOPE = Envelope(
    rounds=lambda n, m: 40 * (math.sqrt(n) * _log2(n) ** 2 + 8),
    messages=lambda n, m: 60 * m * math.sqrt(n) * _log2(n),
    rounds_label="40·(√n·log²n + 8)",
    messages_label="60·m·√n·log n",
)

# MPX + LDC edge selection (Lemma 2.4): O(log n / beta) rounds (the
# shift cap plus the deepest adoption), broadcast complexity exactly n
# -- each node broadcasts once upon adoption, costing deg(v) messages.
# The additive terms floor the formulas at tiny n where per-round
# constants dominate.
_LDC_ENVELOPE = Envelope(
    rounds=lambda n, m: 24 * (_log2(n) + 4),
    messages=lambda n, m: 16 * (m + n) * _log2(n),
    rounds_label="24·(log n + 4)",
    messages_label="16·(m+n)·log n",
)

# Baswana-Sen on the LDC base (Theorem 3.4 at kappa = 2): O(kappa)
# membership/sampling/join phases of O(1) broadcast rounds each plus
# the tree downcasts, O(kappa m) messages.  Floored generously at tiny
# n where the per-phase constants dominate.
_BS_ENVELOPE = Envelope(
    rounds=lambda n, m: 60 * (_log2(n) + 8),
    messages=lambda n, m: 40 * (m + n) * _log2(n),
    rounds_label="60·(log n + 8)",
    messages_label="40·(m+n)·log n",
)


BINDINGS: Dict[str, Binding] = {b.name: b for b in (
    Binding(
        name="apsp-unweighted", family="apsp",
        description="Theorem 1.2 at eps=0: message-optimal unweighted "
                    "APSP vs the n-fold BFS oracle",
        run=_run_apsp_unweighted, envelope=_APSP_ENVELOPE,
        oracle=ORACLES["unweighted-apsp"]),
    Binding(
        name="apsp-weighted", family="apsp",
        description="Theorem 1.1: weighted APSP (directed / negative "
                    "weights allowed) vs Dijkstra / Bellman-Ford",
        run=_run_apsp_weighted, envelope=_APSP_ENVELOPE,
        oracle=ORACLES["weighted-apsp"]),
    Binding(
        name="bfs-collection", family="bfs",
        description="Lemma 3.22: n BFS trees through the star "
                    "simulation vs per-root sequential BFS",
        run=_run_bfs_collection, envelope=_BFS_STAR_ENVELOPE,
        oracle=ORACLES["unweighted-apsp"]),
    Binding(
        name="matching", family="matching",
        description="Corollary 2.8: exact bipartite maximum matching "
                    "vs Hopcroft-Karp",
        run=_run_matching, envelope=_MATCHING_ENVELOPE,
        oracle=ORACLES["matching-size"]),
    Binding(
        name="cover", family="cover",
        description="Corollary 2.9: (2,2)-sparse neighborhood cover, "
                    "verified padding / depth / overlap",
        run=_run_cover, envelope=_COVER_ENVELOPE),
    Binding(
        name="ldc", family="decomposition",
        description="Lemma 2.4: (O(log n), O(log n))-LDC decomposition "
                    "via MPX vs the exhaustively-verified sequential "
                    "realization",
        run=_run_ldc, envelope=_LDC_ENVELOPE,
        oracle=ORACLES["ldc-reference"],
        decomposition="ldc"),
    Binding(
        name="mpx-cover", family="cover",
        description="Pipeline stage: padded neighborhood cover derived "
                    "from the LDC snapshot, verified padding / radius / "
                    "overlap",
        run=_run_mpx_cover, envelope=_LDC_ENVELOPE,
        oracle=ORACLES["mpx-cover"],
        decomposition="ldc"),
    Binding(
        name="ldc-spanner", family="spanner",
        description="Pipeline stage: cluster spanner (tree + F edges) "
                    "derived from the LDC snapshot, verified subgraph / "
                    "stretch",
        run=_run_ldc_spanner, envelope=_LDC_ENVELOPE,
        oracle=ORACLES["ldc-spanner"],
        decomposition="ldc"),
    Binding(
        name="bs-hierarchy", family="hierarchy",
        description="Pipeline stage: Baswana-Sen hierarchy (Theorem "
                    "3.4) seeded at level 0 by the LDC snapshot, "
                    "verified partition / serving / radius",
        run=_run_bs_hierarchy, envelope=_BS_ENVELOPE,
        oracle=ORACLES["bs-hierarchy"],
        decomposition="ldc"),
)}


def get_binding(name: str) -> Binding:
    try:
        return BINDINGS[name]
    except KeyError:
        known = ", ".join(sorted(BINDINGS))
        raise KeyError(f"unknown binding {name!r}; known: {known}") from None
