#!/usr/bin/env python
"""Scenario: distributed task assignment via bipartite maximum matching.

Workers and tasks form a bipartite compatibility graph; each node is a
machine that only talks to its compatible counterparts.  Corollary 2.8
computes an exact maximum assignment with Õ(n²) messages -- no central
coordinator ever sees the whole graph.  Run:

    python examples/matching_assignment.py
"""

from repro import maximum_matching
from repro.baselines.reference import maximum_matching_size
from repro.graphs import random_bipartite


def main() -> None:
    workers, tasks = 9, 11
    graph = random_bipartite(workers, tasks, 0.35, seed=23)
    print(f"compatibility graph: {graph.name} (m={graph.m} edges)")

    result = maximum_matching(graph, seed=23)
    optimal = maximum_matching_size(graph)
    assert result.size == optimal, "the distributed matching must be maximum"

    print(f"\nassigned {result.size} of {workers} workers "
          f"(optimal = {optimal}):")
    for u, v in sorted(result.matching):
        worker, task = (u, v) if u < workers else (v, u)
        print(f"  worker {worker:>2}  ->  task {task - workers:>2}")

    print("\ncost accounting:")
    print(f"  s bound (2x maximal matching): {result.s_bound}")
    print(f"  simulated phases (rounds of the BCONGEST algorithm): "
          f"{int(result.detail['phases'])}")
    print(f"  broadcasts of the simulated algorithm: "
          f"{int(result.detail['broadcasts'])}")
    print(f"  total CONGEST messages: {result.metrics.messages}")


if __name__ == "__main__":
    main()
