"""The input graph abstraction shared by every algorithm in the library.

A :class:`Graph` is the communication network of the CONGEST model
(§1.1.1): undirected, connected (for most algorithms), with nodes named
``0 .. n-1``.  Edge weights are optional and may be asymmetric (the
weighted-APSP result, Theorem 1.1, holds "even on directed graphs and
even if the edge weights are negative"; directedness affects only the
*weights*, never the communication links, which are always two-way).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

EdgeKey = Tuple[int, int]


def undirected(u: int, v: int) -> EdgeKey:
    """Canonical key for the undirected edge {u, v}.

    Kept consistent with :func:`repro.congest.metrics.undirected` (the
    metrics module avoids importing this one to keep the dependency
    graph acyclic: graphs is the bottom layer).
    """
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Graph:
    """An undirected communication graph with optional (directed) weights.

    Parameters
    ----------
    adj:
        Adjacency map ``node -> sorted tuple of neighbors``.  Node names
        must be ``0 .. n-1``.
    weights:
        Optional map from *ordered* pair ``(u, v)`` to the weight of the
        directed edge u->v.  For undirected weighted graphs both
        orientations carry the same value.  ``None`` means unweighted
        (every edge has weight 1).
    """

    adj: Dict[int, Tuple[int, ...]]
    weights: Optional[Dict[EdgeKey, float]] = None
    name: str = "graph"

    def __post_init__(self) -> None:
        expected = set(range(len(self.adj)))
        if set(self.adj) != expected:
            raise ValueError("graph nodes must be named 0..n-1")
        for u, nbrs in self.adj.items():
            for v in nbrs:
                if v == u:
                    raise ValueError(f"self-loop at node {u}")
                if u not in self.adj[v]:
                    raise ValueError(f"adjacency not symmetric on edge ({u},{v})")
        if self.weights is not None:
            for (u, v) in list(self.weights):
                if v not in self.adj[u]:
                    raise ValueError(f"weight given for non-edge ({u},{v})")
                if (v, u) not in self.weights:
                    # Symmetrize silently: undirected weighted input.
                    self.weights[(v, u)] = self.weights[(u, v)]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.adj)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self.adj.values()) // 2

    def nodes(self) -> range:
        return range(self.n)

    def neighbors(self, u: int) -> Tuple[int, ...]:
        return self.adj[u]

    def degree(self, u: int) -> int:
        return len(self.adj[u])

    def edges(self) -> Iterator[EdgeKey]:
        """Each undirected edge once, as (u, v) with u < v."""
        for u, nbrs in self.adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def weight(self, u: int, v: int) -> float:
        """Weight of the directed edge u -> v (1 if unweighted)."""
        if self.weights is None:
            return 1
        return self.weights[(u, v)]

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    # ------------------------------------------------------------------
    # Structure checks used by tests and drivers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v in self.adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == self.n

    def is_bipartite(self) -> Optional[Tuple[List[int], List[int]]]:
        """Return a bipartition (sides as node lists) or None."""
        color: Dict[int, int] = {}
        for start in self.nodes():
            if start in color:
                continue
            color[start] = 0
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self.adj[u]:
                    if v not in color:
                        color[v] = 1 - color[u]
                        queue.append(v)
                    elif color[v] == color[u]:
                        return None
        left = [u for u in self.nodes() if color[u] == 0]
        right = [u for u in self.nodes() if color[u] == 1]
        return left, right

    def subgraph_distance(self, cluster: Iterable[int], u: int, v: int) -> float:
        """Hop distance between u and v inside the induced subgraph.

        Used to verify the *strong* diameter condition of LDC
        decompositions (Definition 2.3) and cluster radii (Theorem 3.3a).
        Returns ``inf`` if disconnected within the cluster.
        """
        members = set(cluster)
        if u not in members or v not in members:
            return float("inf")
        dist = {u: 0}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            if x == v:
                return dist[x]
            for y in self.adj[x]:
                if y in members and y not in dist:
                    dist[y] = dist[x] + 1
                    queue.append(y)
        return dist.get(v, float("inf"))


def from_edges(n: int, edge_list: Iterable[EdgeKey],
               weights: Optional[Dict[EdgeKey, float]] = None,
               name: str = "graph") -> Graph:
    """Build a :class:`Graph` from an edge list.

    Duplicate edges are collapsed; the adjacency lists come out sorted so
    that executions are reproducible.
    """
    nbrs: List[set] = [set() for _ in range(n)]
    for u, v in edge_list:
        if u == v:
            continue
        nbrs[u].add(v)
        nbrs[v].add(u)
    adj = {u: tuple(sorted(nbrs[u])) for u in range(n)}
    if weights is not None:
        full = {}
        for (u, v), w in weights.items():
            full[(u, v)] = w
            full.setdefault((v, u), w)
        weights = full
    return Graph(adj=adj, weights=weights, name=name)


def edge_key(u: int, v: int) -> EdgeKey:
    """Canonical undirected key, re-exported for convenience."""
    return undirected(u, v)
