"""E10 -- Lemmas 1.5 / 1.6: upcast and downcast over forests.

Measures, for forests of varying depth d and input volumes In:
upcast rounds vs. the O(In/log n + d) pipelining bound and messages vs.
O(d * In/log n); downcast rounds vs. O(|M| + d) and messages vs.
O(d * |M|).  The transport engine is the one used inside both
simulation frameworks, so this is also their unit cost model.
"""

from conftest import run_once

from repro.analysis import print_table, record_extra_info
from repro.scenarios import get_scenario
from repro.primitives import (
    Packet,
    downcast_packets,
    route_packets,
    tree_depths,
    upcast_packets,
)


def _experiment():
    rows = []
    for n, items_per_node in ((32, 1), (32, 4), (64, 2)):
        for label in ("path", "random-tree"):
            g = get_scenario(label).graph(n, seed=n)
            # Root the tree at node 0 by BFS.
            from repro.baselines.reference import bfs_distances
            dist = bfs_distances(g, 0)
            parent = {0: None}
            for v in range(1, n):
                parent[v] = min(u for u in g.neighbors(v)
                                if dist[u] == dist[v] - 1)
            depth = max(tree_depths(parent).values())
            items = {v: [("x", v, i) for i in range(items_per_node)]
                     for v in range(1, n)}
            total_items = sum(len(v) for v in items.values())
            packets = upcast_packets(parent, items)
            _d, up = route_packets(g, packets)
            messages = [(v, ("y", v)) for v in range(1, n)]
            packets = downcast_packets(parent, messages)
            _d, down = route_packets(g, packets)
            rows.append((label, n, depth, total_items,
                         up.rounds, total_items + depth,
                         up.messages,
                         down.rounds, len(messages) + depth,
                         down.messages))
    return rows


def test_e10_upcast_downcast(benchmark):
    rows = run_once(benchmark, _experiment)
    table = print_table(
        ["tree", "n", "depth d", "items In", "up rounds", "In+d",
         "up msgs", "down rounds", "|M|+d", "down msgs"],
        rows, title="E10: upcast/downcast costs (Lemmas 1.5 / 1.6)")
    for row in rows:
        _label, _n, depth, items, up_rounds, up_bound, up_msgs, \
            down_rounds, down_bound, down_msgs = row
        # Pipelining bounds, with a small constant.
        assert up_rounds <= 2 * up_bound + 2
        assert down_rounds <= 2 * down_bound + 2
        # Message bounds: one message per item per tree hop.
        assert up_msgs <= items * depth
        assert down_msgs <= down_bound * depth
    record_extra_info(benchmark, table)
