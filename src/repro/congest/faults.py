"""Seeded, deterministic fault injection for the CONGEST simulator.

The paper's model is a clean synchronous network; the ROADMAP's "messy
regimes" item asks what the algorithms *measurably* do when the network
is not clean: per-edge message loss, duplication and reordering, links
that die mid-execution, and nodes that crash.  This module is the fault
half of that item (latency/asynchrony stays a separate plane).

Design constraints, in order:

* **Fault-free executions must not change by a byte.**  A ``Network``
  without a plan -- or with the inert :meth:`FaultPlan.none` -- draws no
  fault randomness, touches no inbox, and emits no fault meter keys, so
  every existing record, trace, and telemetry line is byte-identical to
  the pre-fault-plane code (pinned by ``tests/test_faults.py``).
* **Decisions are coordinate-seeded, not stream-seeded.**  Every
  per-delivery decision derives its own uniform from
  ``stable_seed("faults", plan.seed, round, src, dst, kind)`` -- a pure
  function of the event's coordinates.  Injection therefore does not
  depend on iteration order, which is what makes the scalar and the
  vectorized broadcast path inject *identically*, and what makes the
  same fault seed replay to byte-identical records across processes.
* **Every injected event is metered and traceable.**  Drops, duplicates
  and crashes land in :class:`~repro.congest.metrics.Metrics`
  (``faults_dropped`` / ``faults_duplicated`` / ``nodes_crashed``) and,
  when a :class:`~repro.congest.tracing.Tracer` is attached, in the
  trace as ``drop`` / ``dup`` / ``crash`` events.

A :class:`FaultPlan` is graph-specific (its link/crash schedules name
real edges and nodes); the named :class:`FaultProfile` entries in
:data:`PROFILES` are the graph-agnostic templates the scenario axis and
the ``repro sweep --faults <profile>`` knob select, realized per graph
by :meth:`FaultProfile.realize`.

Plans are usually *ambient*: :func:`fault_context` installs one for the
duration of a cell execution and every ``Network`` constructed inside
(the algorithm under test, its helper phases, an inline decomposition
build) picks it up -- fault injection reaches executions whose call
chain never heard of faults, without threading a parameter through
every algorithm signature.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.congest.metrics import Edge, Metrics, undirected as edge_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.tracing import Tracer
    from repro.graphs.graph import Graph

# Livelock guard for faulted executions: an algorithm spinning on a
# message that was dropped (or a peer that crashed) must terminate as a
# *diverged* record, not hang a sweep worker until its 5M-round default.
DEFAULT_ROUND_LIMIT = 200_000


def _stable_seed(*parts) -> int:
    # Local import would be circular at module load (network imports
    # metrics; we import network lazily).  The derivation must match
    # repro.congest.network.stable_seed exactly, so delegate at call
    # time instead of duplicating the CRC recipe.
    from repro.congest.network import stable_seed

    return stable_seed(*parts)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule for one graph.

    ``drop`` / ``duplicate`` are per-delivery probabilities;
    ``reorder`` is a per-inbox-per-round shuffle probability.
    ``link_failures`` maps a canonical undirected edge key to the first
    round in which the link is dead (messages sent on it from that
    round on are dropped -- and metered).  ``node_crashes`` maps a node
    to the first round in which it has crashed: it stops acting, its
    pending wake-ups are discarded, and it never sends again (messages
    already in flight *to* it still arrive; it just never reads them).

    ``seed`` names the dedicated ``stable_seed("faults", ...)`` RNG
    stream all probabilistic decisions derive from; ``round_limit``
    clamps ``max_rounds`` so faulted livelocks terminate; ``profile``
    is the provenance label (which named profile realized this plan).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    link_failures: Dict[Edge, int] = field(default_factory=dict)
    node_crashes: Dict[int, int] = field(default_factory=dict)
    seed: int = 0
    round_limit: Optional[int] = None
    profile: str = ""

    @classmethod
    def none(cls) -> "FaultPlan":
        """The inert plan: layering it in changes nothing, by a byte."""
        return cls()

    @property
    def is_null(self) -> bool:
        """True when this plan can never inject anything."""
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.reorder == 0.0 and not self.link_failures
                and not self.node_crashes)

    def describe(self) -> str:
        """The ``fault_source`` provenance string for records."""
        if self.is_null:
            return "none"
        label = self.profile or "plan"
        return f"profile:{label}"

    # ------------------------------------------------------------------
    # Decision streams: pure functions of the event coordinates, so the
    # scalar and batched delivery paths (and any iteration order) make
    # identical choices.
    # ------------------------------------------------------------------
    def _uniform(self, *parts) -> float:
        return random.Random(
            _stable_seed("faults", self.seed, *parts)).random()

    def deliver_copies(self, rnd: int, src: int, dst: int,
                       metrics: Metrics,
                       tracer: Optional["Tracer"]) -> int:
        """How many copies of this send arrive (0 = dropped, 2 = duped).

        The send itself has already been metered by the network -- the
        sender paid its message; faults act on *delivery* only.
        """
        failed_at = self.link_failures.get(edge_key(src, dst))
        if failed_at is not None and rnd >= failed_at:
            metrics.record_fault_drop()
            if tracer is not None:
                tracer.record_drop(rnd, src, dst)
            return 0
        if self.drop and self._uniform(rnd, src, dst, "drop") < self.drop:
            metrics.record_fault_drop()
            if tracer is not None:
                tracer.record_drop(rnd, src, dst)
            return 0
        if (self.duplicate
                and self._uniform(rnd, src, dst, "dup") < self.duplicate):
            metrics.record_fault_duplicate()
            if tracer is not None:
                tracer.record_duplicate(rnd, src, dst)
            return 2
        return 1

    def begin_round(self, rnd: int, inboxes: Dict[int, list],
                    crashed: set, metrics: Metrics,
                    tracer: Optional["Tracer"]) -> List[int]:
        """Apply round-boundary faults; return the newly crashed nodes.

        Called by the network right after it advances to ``rnd`` with
        the inboxes about to be consumed: registers node crashes whose
        schedule has come due (metered and traced once per node) and
        shuffles inboxes selected by the reorder probability.  The
        shuffle permutation comes from the same coordinate-seeded
        stream, so replays and both delivery paths agree on it.
        """
        newly: List[int] = []
        for v, crash_round in self.node_crashes.items():
            if crash_round <= rnd and v not in crashed:
                crashed.add(v)
                newly.append(v)
                metrics.record_node_crash()
                if tracer is not None:
                    tracer.record_crash(rnd, v)
        if self.reorder:
            for dst, box in inboxes.items():
                if len(box) < 2:
                    continue
                rng = random.Random(
                    _stable_seed("faults", self.seed, rnd, dst, "reorder"))
                if rng.random() < self.reorder:
                    rng.shuffle(box)
        return newly


@dataclass(frozen=True)
class FaultProfile:
    """A graph-agnostic fault template, realized per graph + seed.

    ``link_fail_fraction`` / ``crash_fraction`` are the shares of edges
    / nodes scheduled to fail mid-execution (at least one each when the
    fraction is positive).  ``dilation`` is the envelope tolerance for
    fault-aware verdicts: a faulted execution may legitimately take
    longer than the clean envelope, so the differential harness
    evaluates the binding's envelope with its slack multiplied by this
    factor before calling a cell degraded.
    """

    name: str
    description: str
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    link_fail_fraction: float = 0.0
    crash_fraction: float = 0.0
    dilation: float = 4.0
    round_limit: int = DEFAULT_ROUND_LIMIT

    def realize(self, graph: "Graph", seed: int = 0) -> FaultPlan:
        """The concrete :class:`FaultPlan` for one graph and fault seed.

        Deterministic in ``(profile, seed, graph)``: schedules are
        sampled from a ``stable_seed("faults", ...)``-seeded RNG over
        the *sorted* edge/node lists, so the same cell coordinates
        realize the same plan in every process -- the property the
        byte-identical replay guarantee rests on.
        """
        rng = random.Random(_stable_seed(
            "faults", "realize", self.name, seed, graph.n, graph.m))
        # Fail/crash rounds land early enough to hit tier-1 executions
        # but not all in round 1 (round 1 has no deliveries to fault).
        horizon = max(8, 4 * graph.n)
        link_failures: Dict[Edge, int] = {}
        if self.link_fail_fraction > 0.0 and graph.m:
            edges = sorted(edge_key(u, v) for u, v in graph.edges())
            count = min(len(edges),
                        max(1, round(self.link_fail_fraction * len(edges))))
            for u, v in sorted(rng.sample(edges, count)):
                link_failures[(u, v)] = rng.randint(2, horizon)
        node_crashes: Dict[int, int] = {}
        if self.crash_fraction > 0.0 and graph.n:
            count = min(graph.n,
                        max(1, round(self.crash_fraction * graph.n)))
            for v in sorted(rng.sample(sorted(graph.nodes()), count)):
                node_crashes[v] = rng.randint(2, horizon)
        return FaultPlan(
            drop=self.drop, duplicate=self.duplicate, reorder=self.reorder,
            link_failures=link_failures, node_crashes=node_crashes,
            seed=_stable_seed("faults", self.name, seed),
            round_limit=self.round_limit, profile=self.name)


# The named fault profiles -- the first-class axis the scenario catalog
# (repro.scenarios.catalog.FAULT_AXIS) and `repro sweep --faults` draw
# from.  Rates are tuned for tier-1 sizes: light profiles should leave
# most cells correct-under-faults, heavy ones should visibly degrade.
PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile for profile in (
        FaultProfile(
            name="lossy-light", drop=0.02, dilation=4.0,
            description="2% iid message loss: the benign-lossy regime"),
        FaultProfile(
            name="lossy-heavy", drop=0.15, reorder=0.25, dilation=8.0,
            description="15% loss + frequent reordering: a bad network"),
        FaultProfile(
            name="dup-storm", duplicate=0.15, dilation=4.0,
            description="15% duplicated deliveries: at-least-once links"),
        FaultProfile(
            name="reorder-heavy", reorder=0.75, dilation=4.0,
            description="per-round inbox shuffles: no arrival-order FIFO"),
        FaultProfile(
            name="flaky-links", link_fail_fraction=0.08, dilation=6.0,
            description="8% of links die mid-execution, permanently"),
        FaultProfile(
            name="churn", crash_fraction=0.15, dilation=6.0,
            description="15% of nodes crash mid-execution"),
        FaultProfile(
            name="chaos", drop=0.05, duplicate=0.05, reorder=0.25,
            link_fail_fraction=0.05, crash_fraction=0.1, dilation=8.0,
            description="everything at once: loss + dup + reorder + "
                        "link failures + churn"),
    )
}


def fault_profile_names() -> Tuple[str, ...]:
    """Every registered profile name, sorted."""
    return tuple(sorted(PROFILES))


def get_fault_profile(name: str) -> FaultProfile:
    """Look up a named profile; KeyError lists the known names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; known: "
            f"{', '.join(fault_profile_names())}") from None


# ---------------------------------------------------------------------------
# The ambient plan: installed around a cell execution, picked up by
# every Network constructed inside.
# ---------------------------------------------------------------------------
_ACTIVE: List[FaultPlan] = []


def active_plan() -> Optional[FaultPlan]:
    """The innermost ambient plan, or None outside any fault context."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def fault_context(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install ``plan`` as the ambient fault plan for the block.

    ``None`` (and the inert plan) still push/pop, so nesting a clean
    context inside a faulted one shields the inner executions -- the
    differential harness uses that to keep oracle computation clean.
    """
    _ACTIVE.append(plan if plan is not None else FaultPlan.none())
    try:
        yield
    finally:
        _ACTIVE.pop()
