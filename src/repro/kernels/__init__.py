"""Whole-execution array kernels for regular algorithm families.

Opt-in (``repro sweep --kernels``): when a binding's execution is
regular enough to resolve in closed form, the per-node/per-round Python
machine loop is replaced by numpy sweeps over the graph's CSR arrays
with *exact* metering replication -- canonical differential records are
byte-identical kernels on vs off.  See :mod:`repro.kernels.config` for
the knob, the eligibility registry, and the ``engine_source`` labels;
:mod:`repro.kernels.wavefront` and :mod:`repro.kernels.relaxation` for
the engines; :mod:`repro.kernels.jit` for the optional numba tier.
"""

from repro.kernels.config import (
    REGISTRY,
    cell_engine_source,
    clear_note,
    configure_kernels,
    engine_ready,
    kernels_enabled,
    note_engine,
)
from repro.kernels.plan import BcongestPlan

__all__ = [
    "REGISTRY",
    "BcongestPlan",
    "cell_engine_source",
    "clear_note",
    "configure_kernels",
    "engine_ready",
    "kernels_enabled",
    "note_engine",
]
