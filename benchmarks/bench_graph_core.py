"""Regenerate BENCH_graph_core.json: the CSR graph core + cache layer.

Three measurements, all against the preserved dict-era baseline
(``from_edges_legacy`` + per-execution rebuilds):

* **cold construction** -- building one dense and one sparse registry
  scenario's edge set into a Graph, legacy dict path vs. the
  vectorized CSR path;
* **repeat execution** -- one graph run under three structurally
  different algorithms (BFS flood, Luby MIS, Israeli-Itai matching):
  rebuilding the graph the dict-era way for every execution vs. the
  zero-rebuild cache layer (one CSR graph, memoized simulator
  precompute, cached weight views);
* **sweep** -- an in-memory two-scenario differential sweep with the
  per-worker graph LRU disabled vs. enabled.

Run from the repo root (writes next to the other BENCH_*.json files)::

    PYTHONPATH=src python benchmarks/bench_graph_core.py

or equivalently ``repro bench graph-core``.  The measurement itself
lives in :mod:`repro.bench` (the registry behind ``repro bench``), so
this script and the CLI always agree.  Running under pytest executes
the same measurement once and sanity-checks the headline speedup.
"""

from __future__ import annotations

import pathlib


def run(out_dir=None):
    from repro.bench import run_benchmark, write_report

    report = run_benchmark("graph-core")
    path = write_report(report, out_dir)
    for key, ratio in sorted(report.speedups.items()):
        print(f"{key}: {ratio:.2f}x")
    print(f"wrote {path}")
    return report


def test_graph_core_bench(benchmark):
    """Re-measure and gate the ratios; does NOT rewrite the checked-in
    JSON (regenerate that with ``repro bench graph-core`` or by running
    this file as a script)."""
    from conftest import run_once

    from repro.analysis import record_extra_info
    from repro.bench import run_benchmark

    report = run_once(benchmark, lambda: run_benchmark("graph-core"))
    # The cache layer must actually pay for itself: the repeat-execution
    # workload is the acceptance headline (>= 2x), construction must win
    # on both density regimes both cold and across a sweep's cells, and
    # the end-to-end sweep -- dominated by algorithm execution, not
    # construction -- must at least not regress.
    assert report.speedups["repeat_execution"] >= 2.0, report.speedups
    assert report.speedups["cold_construction.dense-gnp"] > 1.1, \
        report.speedups
    assert report.speedups["cold_construction.sparse-gnp"] > 1.1, \
        report.speedups
    assert report.speedups["sweep_construction.dense-gnp"] > 1.5, \
        report.speedups
    assert report.speedups["sweep_construction.sparse-gnp"] > 1.5, \
        report.speedups
    assert report.speedups["sweep"] > 0.9, report.speedups
    record_extra_info(benchmark, "", **{
        k.replace(".", "_"): round(v, 2)
        for k, v in report.speedups.items()})


if __name__ == "__main__":
    run(pathlib.Path(__file__).resolve().parent.parent)
