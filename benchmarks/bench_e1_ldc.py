"""E1 -- Lemma 2.4: (O(log n), O(log n))-LDC decompositions.

Regenerates the quantities of Definition 2.3 (and the three quantities
depicted in the paper's Figure 1: cluster count, max strong diameter,
max F-out-degree) over an n sweep of registry scenarios spanning the
sparse, expander, hub-skewed, and grid regimes, plus the beta ablation
called out in DESIGN.md.  Claim shape: both the realized r and d stay
O(log n) while n quadruples.  Workloads come from the scenario registry
(no hand-rolled graphs), so the regimes probed here are the same named
entries the differential harness and the sweep engine run.
"""

import math

from conftest import run_once

from repro.analysis import print_table, record_extra_info
from repro.decomposition import build_ldc, verify_ldc
from repro.scenarios import get_scenario

# scenario -> the n sweep it is decomposed at (n quadruples end to end).
SWEEP = (
    ("sparse-gnp", (16, 32, 64, 128)),
    ("expander-regular", (16, 32, 64, 128)),
    ("power-law", (16, 32, 64, 128)),
    ("grid", (16, 64)),
)


def _sweep():
    rows = []
    for name, sizes in SWEEP:
        scenario = get_scenario(name)
        for n in sizes:
            g = scenario.graph(n, seed=n)
            ldc = build_ldc(g, seed=n)
            stats = verify_ldc(g, ldc)
            rows.append((name, g.n, stats["clusters"], stats["r"],
                         stats["d"], round(math.log2(g.n), 1),
                         ldc.metrics.rounds))
    return rows


def _beta_ablation():
    g = get_scenario("expander-regular").graph(64, seed=9)
    rows = []
    for beta in (0.25, 0.5, 1.0):
        ldc = build_ldc(g, beta=beta, seed=11)
        stats = verify_ldc(g, ldc)
        rows.append((beta, stats["clusters"], stats["r"], stats["d"]))
    return rows


def test_e1_ldc_decomposition(benchmark):
    rows = run_once(benchmark, _sweep)
    table = print_table(
        ["scenario", "n", "clusters", "diam r", "F-deg d", "log2 n",
         "rounds"],
        rows, title="E1: LDC decompositions (Lemma 2.4 / Figure 1)")
    for _name, n, _clusters, r, d, _log, rounds in rows:
        bound = 8 * math.log2(n) + 4
        assert r <= bound, f"strong diameter {r} not O(log n) at n={n}"
        assert d <= bound, f"F-degree {d} not O(log n) at n={n}"
        assert rounds <= 20 * math.log2(n) + 20
    record_extra_info(benchmark, table, max_r=max(r[3] for r in rows),
                      max_d=max(r[4] for r in rows))


def test_e1_beta_ablation(benchmark):
    rows = run_once(benchmark, _beta_ablation)
    table = print_table(
        ["beta", "clusters", "diam r", "F-deg d"], rows,
        title="E1b: MPX rate ablation (diameter vs. communication trade)")
    # Larger beta -> more clusters and smaller diameters.
    clusters = [row[1] for row in rows]
    assert clusters[0] <= clusters[-1]
    record_extra_info(benchmark, table)
