"""Theorem 1.2 end-to-end: exact unweighted APSP across the eps range,
plus the direct baselines and the trade-off's cost shape."""

import pytest

from repro.baselines.apsp_direct import (
    apsp_direct_unweighted,
    apsp_direct_weighted,
)
from repro.baselines.reference import unweighted_apsp, weighted_apsp
from repro.core.bfs_collections import (
    depth_cap,
    n_bfs_trees_batched,
    n_bfs_trees_star,
)
from repro.core.tradeoff_apsp import (
    apsp_tradeoff,
    landmark_completion,
    sample_landmarks,
)
from repro.graphs import cycle, gnp, grid, uniform_weights


@pytest.mark.parametrize("eps", [0.0, 0.25, 0.4, 0.5, 0.75, 1.0])
def test_tradeoff_apsp_exact(eps):
    g = gnp(24, 0.18, seed=41)
    result = apsp_tradeoff(g, eps, seed=41)
    assert result.dist == unweighted_apsp(g)


def test_tradeoff_regimes_selected():
    g = gnp(20, 0.2, seed=42)
    assert "message-optimal" in apsp_tradeoff(g, 0.0, seed=42).regime
    assert "batched" in apsp_tradeoff(g, 0.3, seed=42).regime
    assert "star" in apsp_tradeoff(g, 0.8, seed=42).regime


def test_tradeoff_on_high_diameter_graph():
    g = grid(4, 8)
    for eps in (0.3, 0.6):
        result = apsp_tradeoff(g, eps, seed=43)
        assert result.dist == unweighted_apsp(g)


def test_tradeoff_on_cycle():
    g = cycle(18)
    result = apsp_tradeoff(g, 0.4, seed=44)
    assert result.dist == unweighted_apsp(g)


def test_eps_out_of_range():
    g = cycle(8)
    with pytest.raises(ValueError):
        apsp_tradeoff(g, -0.1)
    with pytest.raises(ValueError):
        apsp_tradeoff(g, 1.1)


def test_bfs_trees_star_complete():
    g = gnp(20, 0.25, seed=45)
    result = n_bfs_trees_star(g, 0.5, seed=45)
    ref = unweighted_apsp(g)
    for v in g.nodes():
        for j in g.nodes():
            assert result.trees[v][j][0] == ref[j][v]


def test_bfs_trees_batched_depth_capped():
    g = grid(5, 5)
    eps = 0.4
    cap = depth_cap(g.n, eps)
    result = n_bfs_trees_batched(g, eps, seed=46, cap=cap)
    ref = unweighted_apsp(g)
    for v in g.nodes():
        for j in g.nodes():
            if ref[j][v] <= cap:
                assert result.trees[v][j][0] == ref[j][v]
    assert result.detail["rounds_scheduled"] > 0
    assert result.detail["batches"] >= 2


def test_landmark_completion_covers_far_pairs():
    g = grid(3, 10)  # diameter 11
    landmarks = sample_landmarks(g.n, 0.3, seed=47)
    depths, metrics = landmark_completion(g, landmarks, seed=47)
    assert metrics.messages > 0
    ref = unweighted_apsp(g)
    for l in landmarks:
        for v in g.nodes():
            assert depths[l][v] == ref[l][v]


def test_direct_unweighted_baseline():
    g = gnp(22, 0.3, seed=48)
    result = apsp_direct_unweighted(g, seed=48)
    assert result.dist == unweighted_apsp(g)
    # Theorem 1.4(ii): O(log n) distinct BFS ids per node-round.
    assert result.detail["max_distinct_bfs_per_round"] <= 6 * 5  # 6 log2 n


def test_direct_weighted_baseline():
    g = uniform_weights(gnp(16, 0.3, seed=49), w_max=7, seed=49)
    result = apsp_direct_weighted(g, seed=49)
    assert result.dist == weighted_apsp(g)


def test_tradeoff_message_round_shape():
    """The headline: messages grow and rounds shrink along eps.

    With small n the polylog factors dominate, so we assert the two
    endpoints' ordering rather than full monotonicity: the direct
    (eps = 1-style) execution uses more messages and fewer rounds than
    the message-optimal end.
    """
    g = gnp(26, 0.4, seed=50)
    opt = apsp_tradeoff(g, 0.0, seed=50)
    direct = apsp_direct_unweighted(g, seed=50)
    assert direct.detail["bfs_messages"] > 0
    # Message-optimal end: per-phase traffic is far below n * m.
    assert opt.dist == direct.dist == unweighted_apsp(g)
    assert direct.metrics.rounds < opt.metrics.rounds
