"""The differential-oracle harness: simulator vs. sequential reference.

For a scenario x algorithm binding this module builds the scenario
graph, runs the distributed implementation on the literal CONGEST
simulator, cross-checks the outputs against the independent sequential
oracles in :mod:`repro.baselines.reference`, and checks the measured
round/message costs against the binding's declared complexity envelope
(scaled by the scenario's slack).  Everything is seed-deterministic, so
a failing record reproduces exactly from its ``(scenario, algorithm,
size, seed)`` coordinates.

Consumers: ``tests/test_differential_oracles.py`` (one assertion per
matrix cell), the ``repro scenarios run/sweep`` CLI (JSON records), and
``benchmarks/bench_e14_scenarios.py`` (the matrix as a benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.kernels import config as kernels_config
from repro.scenarios import Scenario, get_binding, get_scenario

# Fault-aware verdicts (recorded in ``fault_verdict`` for faulted cells):
# the fault-free sequential oracle stays the ground truth, and a faulted
# execution is judged against it with tolerance.
CORRECT_UNDER_FAULTS = "correct-under-faults"  # oracle-exact, in envelope
DEGRADED = "degraded"      # completed but wrong/slow vs the clean oracle
DIVERGED = "diverged"      # did not complete (livelock, model violation)


@dataclass
class DifferentialRecord:
    """One scenario x algorithm execution with its verdicts."""

    scenario: str
    algorithm: str
    family: str
    size: int
    seed: int
    n: int
    m: int
    ok: bool                       # outputs equal the sequential oracle
    envelope_ok: bool              # measured cost within declared envelope
    checks: Dict[str, bool]
    metrics: Dict[str, int]
    envelope: Dict[str, float]     # evaluated bounds (with slack applied)
    detail: Dict[str, Any] = field(default_factory=dict)
    derived_seed: int = 0          # the construction seed fed to build()
    wall_time: float = 0.0         # seconds spent building + running the cell
    graph_source: str = "built"    # where the graph came from: built/lru/store
    oracle_source: str = "none"    # baseline origin: computed/lru/store/none
    decomposition_source: str = "none"  # input snapshot origin: same vocab
    fault_profile: str = ""        # named profile injected, "" = fault-free
    fault_seed: int = 0            # the --fault-seed the plan derived from
    fault_verdict: str = ""        # correct-under-faults/degraded/diverged
    fault_source: str = "none"     # plan provenance (nondeterministic field)
    profile_source: str = "none"   # round-profile destination under --profile
    engine_source: str = "none"    # which engine ran under --kernels

    @property
    def passed(self) -> bool:
        if self.fault_profile:
            # Under injected faults only divergence fails the cell: a
            # degraded result is the characterization we came for.
            return self.fault_verdict != DIVERGED
        return self.ok and self.envelope_ok

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "family": self.family,
            "size": self.size,
            "seed": self.seed,
            "derived_seed": self.derived_seed,
            "n": self.n,
            "m": self.m,
            "ok": self.ok,
            "envelope_ok": self.envelope_ok,
            "passed": self.passed,
            "checks": self.checks,
            "metrics": self.metrics,
            "envelope": self.envelope,
            "detail": self.detail,
            "wall_time": self.wall_time,
            "graph_source": self.graph_source,
            "oracle_source": self.oracle_source,
            "decomposition_source": self.decomposition_source,
        }
        # Fault fields only appear on faulted records, so fault-free
        # rows stay byte-identical to the pre-fault-plane format.
        if self.fault_profile:
            out["fault_profile"] = self.fault_profile
            out["fault_seed"] = self.fault_seed
            out["fault_verdict"] = self.fault_verdict
            out["fault_source"] = self.fault_source
        # Likewise: profile provenance appears only on profiled records,
        # and is stripped from canonical payloads either way.
        if self.profile_source != "none":
            out["profile_source"] = self.profile_source
        # Engine provenance appears only under --kernels (same pattern:
        # a nondeterministic field, never part of canonical payloads).
        if self.engine_source != "none":
            out["engine_source"] = self.engine_source
        return out

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic payload: everything except the wall clock.

        Two executions of the same ``(scenario, algorithm, size, seed)``
        cell at the same code revision agree exactly on this dict -- the
        identity the run store's resume logic and the ``--compare``
        regression diff are built on.  The excluded fields are named by
        ``repro.runner.jobs.NONDETERMINISTIC_FIELDS`` (``wall_time``
        plus the ``graph_source``/``oracle_source``/
        ``decomposition_source`` provenance), shared with
        ``CellResult.canonical_record``.
        """
        from repro.runner.jobs import NONDETERMINISTIC_FIELDS

        payload = self.as_dict()
        for field_name in NONDETERMINISTIC_FIELDS:
            payload.pop(field_name, None)
        return payload

    def failure_message(self) -> str:
        """A reproducible description of what went wrong (or 'passed')."""
        if self.passed:
            return "passed"
        parts = [f"{self.scenario} x {self.algorithm} "
                 f"(size={self.size}, seed={self.seed}, n={self.n}, "
                 f"m={self.m})"]
        if self.fault_profile:
            parts.append(f"faults={self.fault_profile} "
                         f"(fault_seed={self.fault_seed}): "
                         f"{self.fault_verdict or 'no verdict'}")
        failed = [name for name, good in self.checks.items() if not good]
        if failed:
            parts.append(f"failed checks: {', '.join(failed)}")
        # A run that never completed has no meters; quoting a vacuous
        # "rounds 0 vs N" envelope line would bury the real error.
        completed = self.checks.get("execution_completed", True)
        if completed and not self.envelope_ok and self.envelope:
            parts.append(
                f"envelope violated: rounds {self.metrics.get('rounds', 0)} "
                f"vs {self.envelope['max_rounds']:.0f}, messages "
                f"{self.metrics.get('messages', 0)} vs "
                f"{self.envelope['max_messages']:.0f}")
        error = self.detail.get("error") if self.detail else None
        if error:
            parts.append(str(error))
        return "; ".join(parts)


def run_differential(scenario: Scenario | str, algorithm: str, *,
                     size: Optional[int] = None,
                     seed: int = 0,
                     faults: Optional[Any] = None,
                     fault_seed: int = 0) -> DifferentialRecord:
    """Run one matrix cell: scenario graph -> simulator -> oracle.

    The scenario graph is served from the cache chain of
    :mod:`repro.runner.graph_cache` (in-process LRU -> on-disk snapshot
    store, when one is configured -> build-and-publish), keyed by the
    derived construction seed: consecutive cells over the same scenario
    x size (one per bound algorithm) reuse one built graph -- and its
    memoized simulator precomputation -- instead of rebuilding it per
    cell.  The binding's sequential baseline resolves through the
    mirror chain of :mod:`repro.runner.oracle_cache` (in-process LRU ->
    oracle store -> compute-and-publish), keyed by the oracle name and
    its source revision on top of the cell coordinates, so cells skip
    recomputing their ground truth the same way they skip rebuilding
    their graph.  Bindings that consume a decomposition snapshot
    (``binding.decomposition``) resolve it through the third chain,
    :mod:`repro.runner.decomposition_cache`, so the staged pipeline's
    downstream cells skip re-running MPX.  All three chains' answers
    are recorded on the record (``graph_source`` / ``oracle_source`` /
    ``decomposition_source`` -- nondeterministic fields: provenance,
    not payload).

    With ``faults`` (a profile name or :class:`FaultProfile`), the cell
    runs under a seeded fault plan and is judged against the *fault-free*
    oracle with the profile's envelope dilation: ``correct-under-faults``
    when still oracle-exact and in the dilated envelope, ``degraded``
    when it completed but is wrong or slow, ``diverged`` when the
    execution itself failed (livelock past the plan's round limit, or a
    model violation provoked by the faults).  Graph and oracle resolve
    through their normal cache chains *before* the fault context opens
    (the ground truth stays clean); the decomposition chain is bypassed
    -- any decomposition the binding needs is computed inline under the
    same faults, never published under fault-free cache keys.
    """
    from repro.runner.decomposition_cache import binding_decomposition_source
    from repro.runner.graph_cache import scenario_graph_source
    from repro.runner.oracle_cache import binding_oracle_source

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if algorithm not in scenario.algorithms:
        raise ValueError(
            f"scenario {scenario.name!r} does not bind {algorithm!r} "
            f"(bindings: {', '.join(scenario.algorithms)})")
    binding = get_binding(algorithm)
    size = scenario.default_size if size is None else size
    derived_seed = scenario.seed_for(size, seed)
    start = time.perf_counter()
    graph, graph_source = scenario_graph_source(scenario, size, seed=seed)
    oracle, oracle_source = binding_oracle_source(scenario, size, seed,
                                                  binding, graph)
    if faults is not None:
        return _run_faulted(scenario, algorithm, binding, graph,
                            graph_source, oracle, oracle_source,
                            size=size, seed=seed, derived_seed=derived_seed,
                            faults=faults, fault_seed=fault_seed,
                            start=start)
    snapshot, decomposition_source = binding_decomposition_source(
        scenario, size, seed, binding, graph)
    kernels_config.clear_note()
    if binding.decomposition is not None:
        result = binding.run(graph, derived_seed, oracle=oracle,
                             decomposition=snapshot)
    else:
        result = binding.run(graph, derived_seed, oracle=oracle)
    engine_source = kernels_config.cell_engine_source(algorithm)
    wall_time = time.perf_counter() - start
    envelope = binding.envelope.evaluate(graph.n, graph.m,
                                         slack=scenario.envelope_slack)
    envelope_ok = (result.metrics["rounds"] <= envelope["max_rounds"]
                   and result.metrics["messages"] <= envelope["max_messages"])
    return DifferentialRecord(
        scenario=scenario.name, algorithm=algorithm, family=binding.family,
        size=size, seed=seed, n=graph.n, m=graph.m,
        ok=result.ok, envelope_ok=envelope_ok, checks=result.checks,
        metrics=result.metrics, envelope=envelope, detail=result.detail,
        derived_seed=derived_seed, wall_time=wall_time,
        graph_source=graph_source, oracle_source=oracle_source,
        decomposition_source=decomposition_source,
        engine_source=engine_source)


def _run_faulted(scenario: Scenario, algorithm: str, binding, graph,
                 graph_source: str, oracle, oracle_source: str, *,
                 size: int, seed: int, derived_seed: int,
                 faults, fault_seed: int, start: float) -> DifferentialRecord:
    """The fault path of :func:`run_differential` (clean path untouched)."""
    from repro.congest.faults import FaultProfile, fault_context, \
        get_fault_profile

    profile = (faults if isinstance(faults, FaultProfile)
               else get_fault_profile(faults))
    plan = profile.realize(graph, fault_seed)
    envelope = binding.envelope.evaluate(
        graph.n, graph.m, slack=scenario.envelope_slack * profile.dilation)
    result = None
    error: Optional[str] = None
    kernels_config.clear_note()
    if not plan.is_null:
        # Pre-note the fallback reason: a faulted execution may crash
        # before any kernel-eligible stage consults engine_ready().
        kernels_config.note_engine("vectorized:faults")
    with fault_context(plan):
        try:
            if binding.decomposition is not None:
                # Bypass the decomposition cache chain: the snapshot
                # must be computed under the same faults as the cell
                # and must never be published under fault-free keys.
                result = binding.run(graph, derived_seed, oracle=oracle,
                                     decomposition=None)
            else:
                result = binding.run(graph, derived_seed, oracle=oracle)
        except Exception as exc:  # noqa: BLE001 - verdict, not crash
            error = f"{type(exc).__name__}: {exc}"
    engine_source = kernels_config.cell_engine_source(algorithm)
    wall_time = time.perf_counter() - start
    decomposition_source = ("none" if binding.decomposition is None
                            else "inline")
    if result is None:
        return DifferentialRecord(
            scenario=scenario.name, algorithm=algorithm,
            family=binding.family, size=size, seed=seed,
            n=graph.n, m=graph.m, ok=False, envelope_ok=False,
            checks={"execution_completed": False},
            metrics={"rounds": 0, "messages": 0},
            envelope=envelope, detail={"error": error},
            derived_seed=derived_seed, wall_time=wall_time,
            graph_source=graph_source, oracle_source=oracle_source,
            decomposition_source=decomposition_source,
            engine_source=engine_source,
            fault_profile=profile.name, fault_seed=fault_seed,
            fault_verdict=DIVERGED, fault_source=plan.describe())
    envelope_ok = (result.metrics["rounds"] <= envelope["max_rounds"]
                   and result.metrics["messages"] <= envelope["max_messages"])
    verdict = (CORRECT_UNDER_FAULTS if result.ok and envelope_ok
               else DEGRADED)
    checks = dict(result.checks)
    checks["execution_completed"] = True
    return DifferentialRecord(
        scenario=scenario.name, algorithm=algorithm, family=binding.family,
        size=size, seed=seed, n=graph.n, m=graph.m,
        ok=result.ok, envelope_ok=envelope_ok, checks=checks,
        metrics=result.metrics, envelope=envelope, detail=result.detail,
        derived_seed=derived_seed, wall_time=wall_time,
        graph_source=graph_source, oracle_source=oracle_source,
        decomposition_source=decomposition_source,
        engine_source=engine_source,
        fault_profile=profile.name, fault_seed=fault_seed,
        fault_verdict=verdict, fault_source=plan.describe())


def record_from_dict(payload: Dict[str, Any]) -> DifferentialRecord:
    """Rebuild a record from ``as_dict()`` output (e.g. a stored JSONL row)."""
    data = dict(payload)
    data.pop("passed", None)  # derived property, not a field
    return DifferentialRecord(**data)


def run_scenario(name: str, *, size: Optional[int] = None,
                 algorithm: Optional[str] = None,
                 seed: int = 0) -> List[DifferentialRecord]:
    """Run one scenario under all (or one) of its bound algorithms."""
    scenario = get_scenario(name)
    algorithms = scenario.algorithms if algorithm is None else (algorithm,)
    return [run_differential(scenario, alg, size=size, seed=seed)
            for alg in algorithms]


def sweep(names: Optional[Iterable[str]] = None, *,
          sizes: Optional[Iterable[int]] = None,
          seed: int = 0, workers: int = 1,
          timeout: Optional[float] = None) -> List[DifferentialRecord]:
    """The full matrix: scenarios x bound algorithms x sizes.

    ``sizes=None`` runs each scenario at its tier-1 ``default_size``
    only; an explicit size list is applied to every scenario (sizes are
    per-scenario workload sizes, not shared absolute node counts -- a
    grid rounds to the nearest rectangle, a chain to an even length).

    Routed through the :mod:`repro.runner` engine: ``workers=1`` (the
    default) executes in-process exactly as before; ``workers>1`` fans
    the cells out to a worker-process pool.  Both modes return identical
    record payloads (pinned by ``tests/test_runner.py``).  A cell that
    times out or errors raises here -- callers of this in-memory API
    expect a complete record list; use the engine directly for
    failure-tolerant sweeps.
    """
    from repro.runner.engine import run_sweep

    # Validate eagerly (and resolve names) so a typo raises the same
    # KeyError it always has, before any worker process is spawned.
    names = None if names is None else [get_scenario(n).name for n in names]
    sizes = None if sizes is None else list(sizes)
    outcome = run_sweep(names, sizes=sizes, seeds=(seed,),
                        workers=workers, timeout=timeout)
    broken = [r for r in outcome.results if r.record is None]
    if broken:
        first = broken[0]
        raise RuntimeError(
            f"{len(broken)} sweep cell(s) did not produce a record; "
            f"first: {first.spec.identity} "
            f"[{first.status}] {first.error}")
    return outcome.records


def summarize(records: Iterable[DifferentialRecord]) -> Dict[str, Any]:
    """Aggregate verdict counts for reports and CLI output."""
    records = list(records)
    failed = [r for r in records if not r.passed]
    return {
        "cells": len(records),
        "passed": len(records) - len(failed),
        "failed": len(failed),
        "failures": [r.failure_message() for r in failed],
    }
