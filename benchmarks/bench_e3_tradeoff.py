"""E3 -- Theorem 1.2: the unweighted-APSP message-time trade-off curve.

Sweeps eps over {0, 0.25, 0.4, 0.5, 0.75, 1.0} at fixed n and records
messages and rounds for each regime (message-optimal / batched+landmarks
/ star; eps = 1.0 is compared against the direct round-optimal
execution, which is what the star simulation degenerates to).  Claim
shape: messages increase and (scheduled) rounds decrease along the
curve, exactness everywhere.  The workload is the registry's headline
``dense-gnp`` scenario (the regime where the trade-off is widest), not
a hand-rolled graph.
"""

from conftest import run_once

from repro.analysis import print_table, record_extra_info
from repro.baselines.apsp_direct import apsp_direct_unweighted
from repro.baselines.reference import unweighted_apsp
from repro.core import apsp_tradeoff
from repro.scenarios import get_scenario


N = 32
EPS_GRID = (0.0, 0.25, 0.4, 0.5, 0.75, 1.0)

SCENARIO = get_scenario("dense-gnp")


def _sweep():
    g = SCENARIO.graph(N, seed=N)
    ref = unweighted_apsp(g)
    rows = []
    for eps in EPS_GRID:
        result = apsp_tradeoff(g, eps, seed=N)
        assert result.dist == ref, f"eps={eps} must be exact"
        rounds = result.detail.get("rounds_scheduled", result.metrics.rounds)
        rows.append((eps, result.regime.split(" ")[0],
                     result.metrics.messages, result.metrics.rounds,
                     rounds))
    direct = apsp_direct_unweighted(g, seed=N)
    assert direct.dist == ref
    rows.append(("direct", "round-optimal", direct.metrics.messages,
                 direct.metrics.rounds, direct.metrics.rounds))
    return rows


def test_e3_tradeoff_curve(benchmark):
    rows = run_once(benchmark, _sweep)
    table = print_table(
        ["eps", "regime", "messages", "rounds (seq)", "rounds (sched)"],
        rows, title=f"E3: unweighted APSP trade-off (Theorem 1.2), n={N}")
    # Endpoint ordering: the message-optimal end uses fewer messages and
    # more rounds than the round-optimal direct execution.
    msg_opt = rows[0]
    direct = rows[-1]
    assert msg_opt[2] < direct[2], "eps=0 must be the message-frugal end"
    assert msg_opt[3] > direct[3], "eps=0 must pay in rounds"
    # The eps = 0 end is the global message minimum across the curve.
    assert msg_opt[2] == min(r[2] for r in rows), \
        "eps=0 must minimize messages over the whole curve"
    # The round-optimal end (eps = 1, where the star simulation
    # degenerates to direct broadcast) runs far fewer rounds than eps=0.
    eps1 = next(r for r in rows if r[0] == 1.0)
    assert eps1[4] < msg_opt[4] / 2, \
        "eps=1 must be the round-frugal end"
    record_extra_info(benchmark, table,
                      msg_optimal_messages=msg_opt[2],
                      direct_messages=direct[2])
