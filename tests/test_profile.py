"""Round-resolved profiling: the per-round timeline plane end to end.

What is locked down here:

* **the sum property** -- the per-round deltas a profiler records sum
  *exactly* to the execution's final ``Metrics``, per segment, on both
  the scalar and the vectorized delivery path, clean and under
  injected faults, across the differential bindings;
* **the window-max fix** -- ``Metrics.delta_since`` reports the max
  message size seen *within* the window, not the execution-wide
  running max;
* **zero overhead off / byte identity on** -- a Network without a
  profiler takes the untouched path, and a sweep run with
  ``--profile`` / ``--cprofile`` produces canonical records
  byte-identical to an unprofiled sweep;
* **the profiles artifact family** -- publish / load round-trips are
  exact, revisions coexist, ``find`` resolves the newest;
* **hot-function capture** -- cProfile rows ride on ``CellResult.hot``
  and aggregate in ``repro runs report``;
* **the CLI surfaces** -- ``sweep --profile --cprofile``,
  ``profile ls / show / diff``, ``runs watch --once``, and the pinned
  ``runs report --json`` / ``bench history --json`` payloads.
"""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.congest import (
    FaultPlan,
    Metrics,
    RoundProfiler,
    active_profiler,
    mark_phase,
    profile_context,
    run_machines,
)
from repro.congest.profile import ADDITIVE_COLUMNS, COLUMNS
from repro.graphs import gnp
from repro.primitives import BFSMachine
from repro.runner import RunStore, run_sweep
from repro.runner.jobs import CellResult, JobSpec
from repro.store import ProfileStore, profile_identity
from repro.testing.differential import run_differential


def _assert_segment_sums_exact(profile):
    """The tentpole invariant: per-round deltas sum to the real totals.

    Segment totals come from ``Metrics.delta_since`` on the live
    metrics object -- the ground truth -- so equality here proves the
    row-by-row accounting lost nothing.
    """
    assert profile.segments, "profiled execution recorded no segment"
    seg_col = profile.columns["segment"]
    for index, segment in enumerate(profile.segments):
        totals = segment["totals"]
        assert totals is not None, f"segment {index} never closed"
        mask = seg_col == index
        assert segment["rows"] == int(mask.sum())
        for name in ("messages", "words", "broadcasts"):
            assert int(profile.columns[name][mask].sum()) == totals[name]
        for column, field in (("faults_dropped", "faults_dropped"),
                              ("faults_duplicated", "faults_duplicated"),
                              ("nodes_crashed", "nodes_crashed")):
            assert int(profile.columns[column][mask].sum()) \
                == totals.get(field, 0)
        if mask.any():
            # The last acting round is always recorded, so the row
            # coverage reaches at least the metered round count.
            assert int(profile.columns["round"][mask].max()) \
                >= totals["rounds"]


# ---------------------------------------------------------------------------
# Satellite: the delta_since window-max fix
# ---------------------------------------------------------------------------

def test_delta_since_max_message_words_is_windowed():
    m = Metrics()
    m.record_send(0, 1, 5)
    snap = m.snapshot()
    m.record_send(0, 1, 2)
    # Before the fix this copied the execution-wide running max (5)
    # into the phase delta; the window only ever saw a 2-word message.
    assert m.delta_since(snap).max_message_words == 2
    assert m.delta_since(m.snapshot()).max_message_words == 0
    assert m.max_message_words == 5


def test_delta_since_window_max_through_broadcast_path():
    m = Metrics()
    m.record_broadcast_sends([(0, 1), (0, 2)], 7)
    snap = m.snapshot()
    m.record_broadcast_sends([(1, 2)], 3)
    delta = m.delta_since(snap)
    assert delta.max_message_words == 3
    assert delta.messages == 1 and delta.words == 3


# ---------------------------------------------------------------------------
# The profiler core and the ambient context
# ---------------------------------------------------------------------------

def test_empty_profiler_compacts_to_empty_profile():
    profile = RoundProfiler().profile()
    assert profile.rounds_executed == 0
    assert sorted(profile.columns) == sorted(COLUMNS)
    assert all(len(profile.columns[c]) == 0 for c in COLUMNS)
    assert profile.peak_congestion() == (0, 0)
    assert profile.totals() == {c: 0 for c in ADDITIVE_COLUMNS}


def test_profile_context_ambient_and_shielding():
    assert active_profiler() is None
    mark_phase("outside")  # must be a silent no-op
    profiler = RoundProfiler()
    with profile_context(profiler):
        assert active_profiler() is profiler
        with profile_context(None):
            # A nested plain context shields inner executions, the way
            # oracle recomputation runs outside the cell's profile.
            assert active_profiler() is None
        assert active_profiler() is profiler
        mark_phase("inside")
    assert active_profiler() is None
    assert profiler.profile().phases == [(0, "inside")]


@pytest.mark.parametrize("fast_path", [True, False])
def test_network_sums_exact_on_both_delivery_paths(fast_path):
    g = gnp(18, 0.3, seed=3)
    profiler = RoundProfiler()
    with profile_context(profiler):
        execution = run_machines(g, lambda info: BFSMachine(info, root=0),
                                 fast_path=fast_path)
    profile = profiler.profile()
    _assert_segment_sums_exact(profile)
    totals = profile.segments[0]["totals"]
    final = execution.metrics.as_dict()
    for name in ("rounds", "messages", "words", "broadcasts"):
        assert totals[name] == final[name]


@pytest.mark.parametrize("fast_path", [True, False])
def test_network_sums_exact_under_faults(fast_path):
    g = gnp(16, 0.4, seed=5)
    profiler = RoundProfiler()
    plan = FaultPlan(drop=0.3, duplicate=0.2, node_crashes={3: 4}, seed=7)
    with profile_context(profiler):
        run_machines(g, lambda info: BFSMachine(info, root=0),
                     fast_path=fast_path, faults=plan)
    profile = profiler.profile()
    _assert_segment_sums_exact(profile)
    totals = profile.totals()
    # The plan above is aggressive enough that every fault kind fired;
    # crash-only rounds must have produced rows of their own.
    assert totals["faults_dropped"] > 0
    assert totals["faults_duplicated"] > 0
    assert totals["nodes_crashed"] == 1


def test_unprofiled_run_measures_identically():
    """Zero overhead when off means zero *effect* when off: the same
    execution with and without a profiler meters identically."""
    g = gnp(14, 0.35, seed=2)
    factory = lambda info: BFSMachine(info, root=0)
    plain = run_machines(g, factory, seed=3)
    profiler = RoundProfiler()
    with profile_context(profiler):
        profiled = run_machines(g, factory, seed=3)
    assert plain.metrics.as_dict() == profiled.metrics.as_dict()
    assert plain.outputs == profiled.outputs


# ---------------------------------------------------------------------------
# The sum property across the differential bindings
# ---------------------------------------------------------------------------

_CELLS = [
    ("complete", "apsp-unweighted", 8),
    ("complete-weighted", "apsp-weighted", 8),
    ("bipartite-balanced", "matching", 10),
    ("dense-gnp", "cover", 10),
    ("dense-gnp", "bs-hierarchy", 10),
]


@pytest.mark.parametrize("scenario,algorithm,size", _CELLS)
def test_binding_sums_exact(scenario, algorithm, size):
    profiler = RoundProfiler()
    with profile_context(profiler):
        record = run_differential(scenario, algorithm, size=size, seed=0)
    assert record.passed
    _assert_segment_sums_exact(profiler.profile())


@pytest.mark.parametrize("scenario,algorithm,size",
                         [("complete", "apsp-unweighted", 8),
                          ("dense-gnp", "cover", 10)])
def test_binding_sums_exact_under_faults(scenario, algorithm, size):
    profiler = RoundProfiler()
    with profile_context(profiler):
        run_differential(scenario, algorithm, size=size, seed=0,
                         faults="lossy-heavy", fault_seed=1)
    profile = profiler.profile()
    _assert_segment_sums_exact(profile)
    assert profile.totals()["faults_dropped"] > 0


def test_apsp_timeline_carries_phase_markers():
    profiler = RoundProfiler()
    with profile_context(profiler):
        run_differential("complete", "apsp-unweighted", size=8, seed=0)
    profile = profiler.profile()
    names = {name for _row, name in profile.phases}
    assert {"preprocessing", "output-delivery"} <= names
    # phase_of_row resolves the marker covering any recorded row.
    assert profile.rounds_executed > 0
    assert isinstance(profile.phase_of_row(profile.rounds_executed - 1),
                      str)


# ---------------------------------------------------------------------------
# The profiles artifact family
# ---------------------------------------------------------------------------

def _capture_profile():
    profiler = RoundProfiler()
    with profile_context(profiler):
        run_machines(gnp(12, 0.4, seed=1),
                     lambda info: BFSMachine(info, root=0))
        mark_phase("tail")
    return profiler.profile()


def test_profile_store_roundtrip_exact(tmp_path):
    store = ProfileStore(tmp_path / "store")
    profile = _capture_profile()
    identity = profile_identity("dense-gnp", "apsp-unweighted", 12, 0,
                                revision="rev-A")
    assert not store.contains(identity)
    assert store.publish(identity, profile)
    assert store.contains(identity)
    loaded = store.load(identity)
    assert loaded is not None
    for name in COLUMNS:
        assert np.array_equal(loaded.columns[name], profile.columns[name])
    assert loaded.phases == profile.phases
    assert loaded.segments == profile.segments
    # Same identity, second publish: already present, not overwritten.
    assert store.publish(identity, profile) is False


def test_profile_store_find_prefers_newest_revision(tmp_path):
    store = ProfileStore(tmp_path / "store")
    profile = _capture_profile()
    for revision in ("rev-A", "rev-B"):
        store.publish(
            profile_identity("dense-gnp", "apsp-unweighted", 12, 0,
                             revision=revision), profile)
    exact = store.find("dense-gnp", "apsp-unweighted", 12, 0,
                       revision="rev-A")
    assert exact is not None and exact["revision"] == "rev-A"
    newest = store.find("dense-gnp", "apsp-unweighted", 12, 0)
    assert newest is not None and newest["revision"] == "rev-B"
    assert store.find("dense-gnp", "apsp-unweighted", 99, 0) is None


# ---------------------------------------------------------------------------
# Sweep integration: byte identity, provenance, hot functions
# ---------------------------------------------------------------------------

def _canonical(outcome):
    return json.dumps([r.canonical_record() for r in outcome.results],
                      sort_keys=True).encode()


def test_sweep_records_byte_identical_profile_on_or_off(tmp_path):
    """The profiling plane must never perturb the science."""
    plain = run_sweep(["path"], store=RunStore(tmp_path / "off"),
                      revision="rev-A")
    profiled = run_sweep(["path"], store=RunStore(tmp_path / "on"),
                         revision="rev-A",
                         profile_store_dir=str(tmp_path / "profiles"),
                         cprofile=True)
    assert _canonical(plain) == _canonical(profiled)

    # The profiled run carries provenance + hot rows *outside* the
    # canonical payload; the plain run carries neither key at all.
    for result in profiled.results:
        assert result.record["profile_source"].startswith("store:")
        assert result.hot and len(result.hot[0]) == 3
    for result in plain.results:
        assert "profile_source" not in result.record
        assert result.hot is None

    # And the store actually holds one profile per executed cell,
    # loadable by cell coordinates.
    store = ProfileStore(tmp_path / "profiles")
    entries = store.ls()
    assert len(entries) == len(profiled.results)
    spec = profiled.results[0].spec
    identity = store.find(spec.scenario, spec.algorithm, spec.size,
                          spec.seed)
    assert identity is not None
    _assert_segment_sums_exact(store.load(identity))

    # Manifest: profiling knobs appear only on the profiled run.
    assert "profile_store" in profiled.run.manifest
    assert profiled.run.manifest["cprofile"] is True
    assert "profile_store" not in plain.run.manifest
    assert "cprofile" not in plain.run.manifest


def test_profiled_sweep_with_pool_workers(tmp_path):
    """Workers pick the profile store up from the exported env var."""
    outcome = run_sweep(["path"], store=RunStore(tmp_path / "runs"),
                        revision="rev-A", workers=2,
                        profile_store_dir=str(tmp_path / "profiles"))
    assert outcome.ok
    for result in outcome.results:
        assert result.record["profile_source"].startswith("store:")
    assert ProfileStore(tmp_path / "profiles").ls()


def test_profiled_record_survives_reload(tmp_path):
    outcome = run_sweep(["path"], store=RunStore(tmp_path / "runs"),
                        revision="rev-A",
                        profile_store_dir=str(tmp_path / "profiles"))
    (run,) = RunStore(tmp_path / "runs").list_runs()
    for result in run.load_results():
        assert result.record["profile_source"].startswith("store:")
        assert result.passed
    assert outcome.ok


def test_cell_result_hot_roundtrip():
    spec = JobSpec("path", "apsp-unweighted", 8, 0)
    hot = [["network.py:1:run", 3, 0.5]]
    result = CellResult(spec=spec, status="done", wall_time=0.1,
                        record={"passed": True}, hot=hot)
    reloaded = CellResult.from_dict(result.as_dict())
    assert reloaded.hot == hot
    bare = CellResult(spec=spec, status="done", wall_time=0.1,
                      record={"passed": True})
    assert "hot" not in bare.as_dict()
    assert CellResult.from_dict(bare.as_dict()).hot is None


# ---------------------------------------------------------------------------
# CLI: sweep --profile/--cprofile, profile ls/show/diff, runs watch,
# and the pinned --json payloads (runs report / bench history)
# ---------------------------------------------------------------------------

@pytest.fixture
def profiled_cli_run(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    assert main(["sweep", "--names", "path", "--runs-dir", runs_dir,
                 "--profile", "--cprofile"]) == 0
    # The sweep's stdout lands during fixture setup; hand it to the
    # test explicitly (a later readouterr() would come back empty).
    sweep_out = capsys.readouterr().out
    (run,) = RunStore(runs_dir).list_runs()
    return runs_dir, str(tmp_path / "runs" / "store"), run.run_id, \
        sweep_out


def test_cli_profiled_sweep_and_profile_show(profiled_cli_run, capsys):
    runs_dir, store_dir, _run_id, sweep_out = profiled_cli_run
    assert "round profiles:" in sweep_out and "cProfile:" in sweep_out

    assert main(["profile", "ls", "--store-dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "apsp-unweighted" in out

    assert main(["profile", "show", "path", "apsp-unweighted",
                 "--store-dir", store_dir, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rows"] > 0
    assert payload["totals"]["messages"] > 0
    assert payload["timeline"]

    assert main(["profile", "show", "path", "apsp-unweighted",
                 "--store-dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "peak congestion:" in out and "round timeline" in out


def test_cli_profile_diff_same_cell(profiled_cli_run, capsys):
    _runs_dir, store_dir, _run_id, _out = profiled_cli_run
    capsys.readouterr()
    # Diff a cell against itself (no --against-* overrides): all-zero
    # deltas, exit 0 -- the degenerate but always-available diff.
    assert main(["profile", "diff", "path", "apsp-unweighted",
                 "--store-dir", store_dir, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rows"]["delta"] == 0
    assert all(cell["delta"] == 0 for cell in payload["totals"].values())


def test_cli_profile_show_missing_cell_errors(tmp_path, capsys):
    assert main(["profile", "show", "path", "apsp-unweighted",
                 "--store-dir", str(tmp_path / "empty")]) == 2
    assert "no stored profile" in capsys.readouterr().err


def test_cli_runs_watch_once(profiled_cli_run, capsys):
    runs_dir, _store_dir, run_id, _out = profiled_cli_run
    capsys.readouterr()
    assert main(["runs", "watch", run_id, "--runs-dir", runs_dir,
                 "--once"]) == 0
    out = capsys.readouterr().out
    assert run_id in out and "cells" in out and "[ended]" in out
    assert "cache hits:" in out


def test_cli_runs_report_aggregates_hot_functions(profiled_cli_run,
                                                 capsys):
    runs_dir, _store_dir, run_id, _out = profiled_cli_run
    capsys.readouterr()
    assert main(["runs", "report", run_id, "--runs-dir", runs_dir,
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["run_id"] == run_id
    assert payload["hot_functions"]
    top = payload["hot_functions"][0]
    assert set(top) == {"function", "cells", "calls", "seconds"}

    assert main(["runs", "report", run_id, "--runs-dir", runs_dir]) == 0
    assert "hot functions across cProfiled cells" \
        in capsys.readouterr().out


def test_cli_bench_history_json_pinned(profiled_cli_run, capsys):
    """Satellite pin: `repro bench history --json` emits the record
    list as JSON (the sweep above appended one sweep record)."""
    _runs_dir, store_dir, _run_id, _out = profiled_cli_run
    capsys.readouterr()
    assert main(["bench", "history", "--history-dir", store_dir,
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload and payload[0]["kind"] == "sweep"
    assert {"name", "sequence", "revision", "timings"} <= set(payload[0])


# ---------------------------------------------------------------------------
# The watch snapshot/render pipeline on a synthetic timeline
# ---------------------------------------------------------------------------

def test_watch_snapshot_counts_lifecycle():
    from repro.telemetry.watch import render_watch, watch_snapshot

    events = [
        {"event": "sweep_begin", "planned": 3},
        {"event": "scheduled", "key": "a"},
        {"event": "scheduled", "key": "b"},
        {"event": "scheduled", "key": "c"},
        {"event": "started", "key": "a"},
        {"event": "started", "key": "b"},
        {"event": "finished", "key": "a", "status": "done",
         "passed": True, "wall_time": 1.5, "scenario": "path",
         "algorithm": "apsp-unweighted", "size": 8, "seed": 0,
         "graph_source": "store", "oracle_source": "computed"},
        {"event": "timed_out", "key": "b", "status": "timeout",
         "passed": False, "wall_time": 0.4, "scenario": "cycle",
         "algorithm": "apsp-unweighted", "size": 8, "seed": 0,
         "graph_source": "lru"},
        {"event": "started", "key": "c"},
    ]
    snapshot = watch_snapshot(events, planned=3)
    assert snapshot["done"] == 2 and snapshot["running"] == ["c"]
    assert snapshot["passed"] == 1 and snapshot["failed"] == 1
    assert not snapshot["ended"]
    assert snapshot["hit_shares"]["graphs"] == 1.0
    assert snapshot["hit_shares"]["oracles"] == 0.0
    assert snapshot["hit_shares"]["decompositions"] is None
    assert snapshot["slowest"][0]["wall_time"] == 1.5

    text = render_watch(snapshot, run_id="run-X")
    assert "run run-X" in text and "2/3 cells" in text
    assert "1 passed, 1 failed, 1 running" in text
    assert "slowest so far:" in text and "running cells:" in text


def test_watch_run_once_writes_one_panel(tmp_path):
    from repro.telemetry.watch import watch_run

    run_sweep(["path"], store=RunStore(tmp_path / "runs"),
              revision="rev-A")
    (run,) = RunStore(tmp_path / "runs").list_runs()
    stream = io.StringIO()
    snapshot = watch_run(run, once=True, stream=stream)
    assert snapshot["ended"] and snapshot["done"] == snapshot["planned"]
    assert run.run_id in stream.getvalue()


# ---------------------------------------------------------------------------
# The analysis layer: show / diff payloads
# ---------------------------------------------------------------------------

def test_profile_show_payload_buckets_long_timelines():
    from repro.analysis.profiles import (
        format_profile_show,
        profile_show_payload,
    )

    profile = _capture_profile()
    payload = profile_show_payload(profile, {"scenario": "dense-gnp"},
                                   limit=3)
    assert payload["rows"] == profile.rounds_executed
    if payload["rows"] > 3:
        assert len(payload["timeline"]) == 3
    # Bucketed or not, the timeline never loses additive mass.
    assert sum(t["messages"] for t in payload["timeline"]) \
        == payload["totals"]["messages"]
    peak = payload["peak_congestion"]
    assert peak["congestion"] == profile.peak_congestion()[1]
    text = format_profile_show(payload)
    assert "peak congestion:" in text


def test_profile_diff_payload_tracks_deltas():
    from repro.analysis.profiles import (
        format_profile_diff,
        profile_diff_payload,
    )

    a = _capture_profile()
    profiler = RoundProfiler()
    with profile_context(profiler):
        mark_phase("head")
        run_machines(gnp(16, 0.4, seed=2),
                     lambda info: BFSMachine(info, root=0))
    b = profiler.profile()
    payload = profile_diff_payload(a, b, {"revision": "A"},
                                   {"revision": "B"})
    assert payload["rows"]["delta"] \
        == b.rounds_executed - a.rounds_executed
    assert payload["totals"]["messages"]["delta"] \
        == b.totals()["messages"] - a.totals()["messages"]
    names = {p["phase"] for p in payload["phases"]}
    assert "head" in names
    text = format_profile_diff(payload)
    assert "recorded rounds:" in text and "additive meters:" in text


# ---------------------------------------------------------------------------
# The capture plane: env propagation to workers
# ---------------------------------------------------------------------------

def test_profile_capture_env_propagation(tmp_path, monkeypatch):
    from repro.runner import profile_capture

    profile_capture.reset()
    assert profile_capture.effective_profile_store() is None
    assert profile_capture.cprofile_enabled() is False

    # A worker process never calls configure_*: it probes the env the
    # parent exported.  Simulate one by resetting the module state.
    profile_capture.configure_profiles(str(tmp_path / "profiles"))
    profile_capture.configure_cprofile(True)
    import os
    assert os.environ[profile_capture.PROFILE_DIR_ENV] \
        == str(tmp_path / "profiles")
    assert os.environ[profile_capture.CPROFILE_ENV] == "1"

    profile_capture._store = None
    profile_capture._store_probed = False
    profile_capture._cprofile = None
    store = profile_capture.effective_profile_store()
    assert store is not None and str(store.root).endswith("profiles")
    assert profile_capture.cprofile_enabled() is True

    profile_capture.configure_profiles(None)
    profile_capture.configure_cprofile(False)
    assert profile_capture.PROFILE_DIR_ENV not in os.environ
    assert profile_capture.CPROFILE_ENV not in os.environ
    assert profile_capture.effective_profile_store() is None
    assert profile_capture.cprofile_enabled() is False


def test_hot_rows_shape():
    import cProfile

    from repro.runner.profile_capture import hot_rows

    profiler = cProfile.Profile()
    profiler.enable()
    sum(range(1000))
    profiler.disable()
    rows = hot_rows(profiler, limit=5)
    assert 0 < len(rows) <= 5
    for label, calls, seconds in rows:
        assert label.count(":") >= 2 and "/" not in label.split(":")[0]
        assert calls >= 1 and seconds >= 0.0
    # Sorted by cumulative time, descending.
    assert [r[2] for r in rows] == sorted((r[2] for r in rows),
                                          reverse=True)
