"""Algorithm bindings: how a scenario graph is run and cross-checked.

A :class:`Binding` names one algorithm family (APSP, BFS collections,
matching, covers), a runner that executes the paper's distributed
implementation on the literal CONGEST simulator, a sequential oracle
from :mod:`repro.baselines.reference` the outputs must equal, and a
metered-complexity :class:`Envelope` -- the Õ-bound the paper claims,
with an explicit constant -- that the measured rounds and messages must
stay inside.

The envelopes are deliberately loose (the paper's bounds hide polylog
factors and constants; ours carry an explicit safety margin on top of
measured behavior) so they catch complexity *regressions* -- an
algorithm change that quietly reverts to Theta(n*m) messages -- rather
than noise.  All runs are seed-deterministic, so a violation is a real
change in behavior, never flakiness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.baselines.reference import (
    bfs_distances,
    is_matching,
    maximum_matching_size,
    unweighted_apsp as ref_unweighted,
    weighted_apsp as ref_weighted,
)
from repro.core import (
    apsp_tradeoff,
    maximum_matching,
    n_bfs_trees_star,
    neighborhood_cover_direct,
    weighted_apsp,
)
from repro.graphs.graph import Graph


def _log2(n: int) -> float:
    return math.log2(max(n, 2))


@dataclass(frozen=True)
class Envelope:
    """Closed-form bounds on metered cost, as functions of (n, m)."""

    rounds: Callable[[int, int], float]
    messages: Callable[[int, int], float]
    rounds_label: str
    messages_label: str

    def evaluate(self, n: int, m: int, slack: float = 1.0) -> Dict[str, float]:
        return {"max_rounds": slack * self.rounds(n, m),
                "max_messages": slack * self.messages(n, m)}


@dataclass
class BindingResult:
    """Outcome of one scenario x binding execution."""

    ok: bool                      # every correctness check passed
    checks: Dict[str, bool]
    metrics: Dict[str, int]       # rounds / messages / broadcasts / words...
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Binding:
    name: str
    family: str
    description: str
    run: Callable[[Graph, int], BindingResult]
    envelope: Envelope


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

def _run_apsp_unweighted(g: Graph, seed: int) -> BindingResult:
    result = apsp_tradeoff(g, 0.0, seed=seed)
    exact = result.dist == ref_unweighted(g)
    return BindingResult(
        ok=exact, checks={"dist_equals_oracle": exact},
        metrics=result.metrics.as_dict(),
        detail={"regime": result.regime})


def _run_apsp_weighted(g: Graph, seed: int) -> BindingResult:
    result = weighted_apsp(g, seed=seed)
    exact = result.dist == ref_weighted(g)
    return BindingResult(
        ok=exact, checks={"dist_equals_oracle": exact},
        metrics=result.metrics.as_dict())


def _run_bfs_collection(g: Graph, seed: int) -> BindingResult:
    result = n_bfs_trees_star(g, 1.0, seed=seed)
    exact = True
    for root in g.nodes():
        oracle = bfs_distances(g, root)
        for v in g.nodes():
            record = result.trees[v].get(root)
            got = record[0] if record is not None else None
            if got != oracle.get(v):
                exact = False
                break
        if not exact:
            break
    return BindingResult(
        ok=exact, checks={"all_bfs_trees_equal_oracle": exact},
        metrics=result.metrics.as_dict())


def _run_matching(g: Graph, seed: int) -> BindingResult:
    result = maximum_matching(g, seed=seed)
    valid = is_matching(g, result.matching)
    optimal = result.size == maximum_matching_size(g)
    return BindingResult(
        ok=valid and optimal,
        checks={"is_matching": valid, "size_equals_hopcroft_karp": optimal},
        metrics=result.metrics.as_dict(),
        detail={"size": result.size, "s_bound": result.s_bound})


def _run_cover(g: Graph, seed: int) -> BindingResult:
    k, w = 2, 2
    result = neighborhood_cover_direct(g, k, w, seed=seed)
    try:
        stats = result.cover.verify(g)
        padded = True
    except AssertionError:
        stats = {"max_depth": -1, "max_overlap": -1,
                 "depth_bound": 0, "overlap_bound": 0}
        padded = False
    depth_ok = padded and stats["max_depth"] <= stats["depth_bound"]
    overlap_ok = padded and stats["max_overlap"] <= stats["overlap_bound"]
    return BindingResult(
        ok=padded and depth_ok and overlap_ok,
        checks={"every_vertex_padded": padded,
                "depth_within_bound": depth_ok,
                "overlap_within_bound": overlap_ok},
        metrics=result.metrics.as_dict(),
        detail={"k": k, "w": w, **{key: float(val)
                                   for key, val in stats.items()}})


# ---------------------------------------------------------------------------
# Envelopes.  Constants calibrated against the measured matrix (see
# tests/test_differential_oracles.py) with a generous margin: the point
# is to catch a complexity-class regression, not to pin exact counts.
# ---------------------------------------------------------------------------

_APSP_ENVELOPE = Envelope(
    rounds=lambda n, m: 8 * n * n * _log2(n),
    messages=lambda n, m: 8 * n * n * _log2(n) ** 2,
    rounds_label="8·n²·log n",
    messages_label="8·n²·log²n",
)

_BFS_STAR_ENVELOPE = Envelope(
    rounds=lambda n, m: 8 * n * n * _log2(n),
    messages=lambda n, m: 8 * n * n * _log2(n) ** 2,
    rounds_label="8·n²·log n",
    messages_label="8·n²·log²n",
)

_MATCHING_ENVELOPE = Envelope(
    rounds=lambda n, m: 10 * n * n * _log2(n),
    messages=lambda n, m: 10 * n * n * _log2(n) ** 2,
    rounds_label="10·n²·log n",
    messages_label="10·n²·log²n",
)

# Direct BCONGEST cover: Õ(n^{1/k}) ball-carving repetitions of cost
# O(m) messages each, every repetition running in its own O(k·w·log n)
# round window.  The additive +8 inside the rounds bound floors the
# formula at tiny n, where the constant per-repetition window dominates
# the asymptotic term.
_COVER_ENVELOPE = Envelope(
    rounds=lambda n, m: 40 * (math.sqrt(n) * _log2(n) ** 2 + 8),
    messages=lambda n, m: 60 * m * math.sqrt(n) * _log2(n),
    rounds_label="40·(√n·log²n + 8)",
    messages_label="60·m·√n·log n",
)


BINDINGS: Dict[str, Binding] = {b.name: b for b in (
    Binding(
        name="apsp-unweighted", family="apsp",
        description="Theorem 1.2 at eps=0: message-optimal unweighted "
                    "APSP vs the n-fold BFS oracle",
        run=_run_apsp_unweighted, envelope=_APSP_ENVELOPE),
    Binding(
        name="apsp-weighted", family="apsp",
        description="Theorem 1.1: weighted APSP (directed / negative "
                    "weights allowed) vs Dijkstra / Bellman-Ford",
        run=_run_apsp_weighted, envelope=_APSP_ENVELOPE),
    Binding(
        name="bfs-collection", family="bfs",
        description="Lemma 3.22: n BFS trees through the star "
                    "simulation vs per-root sequential BFS",
        run=_run_bfs_collection, envelope=_BFS_STAR_ENVELOPE),
    Binding(
        name="matching", family="matching",
        description="Corollary 2.8: exact bipartite maximum matching "
                    "vs Hopcroft-Karp",
        run=_run_matching, envelope=_MATCHING_ENVELOPE),
    Binding(
        name="cover", family="cover",
        description="Corollary 2.9: (2,2)-sparse neighborhood cover, "
                    "verified padding / depth / overlap",
        run=_run_cover, envelope=_COVER_ENVELOPE),
)}


def get_binding(name: str) -> Binding:
    try:
        return BINDINGS[name]
    except KeyError:
        known = ", ".join(sorted(BINDINGS))
        raise KeyError(f"unknown binding {name!r}; known: {known}") from None
