"""Theorem 1.3 / 1.4 scheduling: measured properties of random delays."""

import math

import pytest

from repro.congest.scheduler import (
    ghaffari_schedule_bound,
    measure_bfs_schedule,
    random_delays,
)
from repro.graphs import gnp, grid, path


def test_random_delays_range_and_determinism():
    ids = list(range(50))
    d1 = random_delays(ids, 50, seed=1)
    d2 = random_delays(ids, 50, seed=1)
    d3 = random_delays(ids, 50, seed=2)
    assert d1 == d2
    assert d1 != d3
    assert all(1 <= d1[j] <= 50 for j in ids)
    # Delays are spread out, not clumped on one value.
    assert len(set(d1.values())) > 10


def test_ghaffari_bound_formula():
    assert ghaffari_schedule_bound(100, 10, 16) == 100 + 10 * 4
    assert ghaffari_schedule_bound(0, 0, 2) == 0


def test_theorem_1_4_completion_and_distinct_ids():
    g = gnp(40, 0.25, seed=5)
    m = measure_bfs_schedule(g, seed=5)
    assert m.ell == g.n
    # (i): completion within a constant of ell + dilation.
    assert m.completion_round <= 3 * m.bound_rounds + 10
    # (ii): O(log n) distinct BFS per node-round.
    assert m.max_distinct_bfs_per_node_round <= 6 * math.log2(g.n) + 6
    # Message sizes: 3 words per id record.
    assert m.max_message_words <= 3 * m.max_distinct_bfs_per_node_round


def test_theorem_1_4_on_high_diameter_graph():
    g = path(40)
    m = measure_bfs_schedule(g, seed=6)
    assert m.dilation == g.n - 1
    assert m.completion_round <= 3 * (m.ell + m.dilation)
    # Theorem 1.4(ii): distinct ids per node-round stay O(log n); on a
    # path several delayed fronts can coincide, but within the log scale.
    assert m.max_distinct_bfs_per_node_round <= 2 * math.log2(g.n) + 4


def test_depth_cap_limits_dilation():
    g = grid(5, 8)
    m = measure_bfs_schedule(g, seed=7, max_depth=3)
    assert m.dilation <= 3
    full = measure_bfs_schedule(g, seed=7)
    assert m.messages < full.messages


def test_subset_of_roots():
    g = gnp(30, 0.3, seed=8)
    roots = [0, 5, 9]
    m = measure_bfs_schedule(g, roots=roots, seed=8)
    assert m.ell == 3
    assert m.completion_round <= 3 * (3 + m.dilation) + 10
