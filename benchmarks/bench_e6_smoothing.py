"""E6 -- Lemma 3.8: congestion smoothing via an ensemble of hierarchies.

Runs the n-BFS batched simulation (Lemma 3.23's engine) twice: all
batches over ONE pruned hierarchy, vs. each batch over its OWN hierarchy
(the ensemble).  Compares the worst cluster-edge congestion of the
combined execution.  Claim shape: the ensemble's maximum cluster-edge
congestion is significantly below the single-hierarchy run's, and every
edge is claimed as a cluster edge by only O(log n) of the zeta
hierarchies.
"""

import math

from conftest import run_once

from repro.analysis import print_table, record_extra_info
from repro.congest.metrics import Metrics
from repro.core import component_batches, simulate_aggregation
from repro.core.bfs_collections import depth_cap, shared_delays
from repro.decomposition import build_ensemble, cluster_edge_multiplicity
from repro.primitives.bfs import BFSCollectionMachine
from repro.scenarios import get_scenario

N = 36
EPS = 0.4


def _run(graph, hierarchies, batches, cap, seed):
    """Simulate each batch over its assigned hierarchy; combine."""
    combined = Metrics()
    worst_cluster = 0
    for idx, batch in enumerate(batches):
        h = hierarchies[idx % len(hierarchies)]
        delays = shared_delays(batch, len(batch), seed + idx)
        roots = {j: j for j in batch}

        def factory(info, _r=roots, _d=delays):
            return BFSCollectionMachine(info, roots=_r, delays=_d,
                                        max_depth=cap)

        report = simulate_aggregation(
            graph, h, factory, aggregate=BFSCollectionMachine.aggregate,
            seed=seed, message_words=12 * graph.n,
            include_tree_preprocessing=False)
        combined.merge(report.simulation, parallel=True)
    cluster_edges = set()
    for h in hierarchies:
        cluster_edges |= h.cluster_edges()
    worst_cluster = combined.congestion_over(cluster_edges)
    return worst_cluster, combined.max_edge_congestion


def _experiment():
    g = get_scenario("dense-gnp").graph(N, seed=77)
    cap = depth_cap(N, EPS)
    zeta = max(2, int(math.ceil(N ** EPS)))
    batches = component_batches(list(g.nodes()), zeta)
    rows = []
    worst_mult = 0
    for trial, (s_seed, e_seed) in enumerate(((501, 601), (502, 602),
                                              (503, 603))):
        single = build_ensemble(g, EPS, 1, seed=s_seed)
        ensemble = build_ensemble(g, EPS, zeta, seed=e_seed)
        single_worst, _ = _run(g, single, batches, cap, seed=11 + trial)
        ens_worst, _ = _run(g, ensemble, batches, cap, seed=11 + trial)
        mult = cluster_edge_multiplicity(g, ensemble)
        worst_mult = max(worst_mult, mult["max"])
        rows.append((trial, single_worst, ens_worst,
                     round(single_worst / max(1, ens_worst), 2),
                     mult["max"]))
    mean_ratio = sum(r[3] for r in rows) / len(rows)
    rows.append(("mean", "-", "-", round(mean_ratio, 2), worst_mult))
    return rows, zeta


def test_e6_congestion_smoothing(benchmark):
    rows, zeta = run_once(benchmark, lambda: _experiment())
    table = print_table(
        ["trial", "single: max cluster cong", "ensemble: max cluster cong",
         "smoothing ratio", "edge multiplicity"],
        rows, title=f"E6: congestion smoothing (Lemma 3.8), n={N}, "
                    f"eps={EPS}, zeta={zeta}, 3 trials")
    trials = rows[:-1]
    mean_ratio = rows[-1][3]
    # The ensemble smooths on average and never substantially worsens.
    assert mean_ratio > 1.1, f"mean smoothing ratio {mean_ratio} too small"
    assert all(r[3] > 0.8 for r in trials)
    # Multiplicity: each edge in O(log n) of the zeta hierarchies.
    assert rows[-1][4] <= 4 * math.log2(N)
    record_extra_info(benchmark, table, mean_smoothing=mean_ratio)
