"""The sweep engine: plan -> (resume) -> execute -> persist -> records.

One call to :func:`run_sweep` is one sweep over the scenario x algorithm
matrix.  The engine builds the deterministic work-list, consults the run
store for an incomplete run with the same parameters at the same git
revision (resuming it and skipping every already-recorded cell), fans
the remaining cells out through :func:`repro.runner.executor.run_cells`,
appends each result to the store the moment it completes, and returns
the merged record set in canonical cell order.

Storeless sweeps (``store=None``) run the same execution path entirely
in memory -- that is what :func:`repro.testing.sweep` and the
``repro scenarios sweep`` CLI use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.runner.executor import OnResult, run_cells
from repro.runner.jobs import CellResult, JobSpec, build_specs
from repro.runner.store import Run, RunStore, git_revision


@dataclass
class SweepOutcome:
    """What one engine invocation did and produced."""

    results: List[CellResult]
    executed: int                  # cells actually run this invocation
    skipped: int                   # cells restored from the store
    run: Optional[Run] = None      # the persisted run, if a store was used
    resumed: bool = False          # True when an incomplete run was continued
    restored_keys: Set[str] = field(default_factory=set)  # resume-skipped
    history: Optional[Any] = None  # BenchHistoryRecord appended on completion

    @property
    def run_id(self) -> Optional[str]:
        return self.run.run_id if self.run is not None else None

    @property
    def records(self):
        """The done cells as DifferentialRecords, in canonical order."""
        from repro.testing.differential import record_from_dict
        return [record_from_dict(result.record) for result in self.results
                if result.record is not None]

    @property
    def ok(self) -> bool:
        return all(result.passed for result in self.results)

    def summary(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for result in self.results:
            by_status[result.status] = by_status.get(result.status, 0) + 1
        # Graph/oracle/decomposition provenance is only meaningful for
        # cells executed *this* invocation: restored records carry the
        # source (and cache configuration) of the run that produced
        # them.
        counts = provenance_counts(self.results, skip=self.restored_keys)
        out = {
            "run_id": self.run_id,
            "cells": len(self.results),
            "executed": self.executed,
            "skipped": self.skipped,
            "resumed": self.resumed,
            "passed": sum(1 for r in self.results if r.passed),
            "failed": sum(1 for r in self.results if not r.passed),
            "statuses": by_status,
            "graph_sources": counts["graphs"],
            "oracle_sources": counts["oracles"],
            "decomposition_sources": counts["decompositions"],
            "engine_sources": counts["engines"],
            # Wall time spent executing cells *this* invocation;
            # restored cells' recorded time (from the runs that actually
            # paid it) only counts toward the cumulative figure.
            "wall_time": sum(r.wall_time for r in self.results
                             if r.key not in self.restored_keys),
            "wall_time_total": sum(r.wall_time for r in self.results),
        }
        # Fault-injection rollups, only when the sweep had any: keeps
        # clean-sweep summaries (and everything rendered from them)
        # unchanged.
        fault = fault_counts(self.results)
        if fault:
            out["fault_counters"] = fault
        poisoned = sum(1 for r in self.results if r.poisoned)
        if poisoned:
            out["poisoned"] = poisoned
        return out


def provenance_counts(results: Sequence[CellResult], *,
                      skip: Optional[Set[str]] = None) -> Dict[str, Any]:
    """Per-family provenance counts over a set of cell results.

    The *single* source of the counting rule, shared by
    :meth:`SweepOutcome.summary` and the manifest ``store_counters``
    stamp (the two copies drifted once -- the PR 6 ``"none"``-row bug):
    cells without a record (timeouts, errors) or whose key is in
    ``skip`` (resume-restored cells, whose provenance belongs to the
    invocation that executed them) are not counted, and ``"none"`` rows
    -- cells with no baseline / no input decomposition / no kernel plane
    -- are dropped (graphs have no ``"none"`` state, every cell has a
    graph).
    """
    skip = frozenset() if skip is None else skip
    graphs: Dict[str, int] = {}
    oracles: Dict[str, int] = {}
    decompositions: Dict[str, int] = {}
    engines: Dict[str, int] = {}
    for result in results:
        if result.record is None or result.key in skip:
            continue
        source = result.record.get("graph_source", "built")
        graphs[source] = graphs.get(source, 0) + 1
        oracle = result.record.get("oracle_source", "none")
        if oracle != "none":
            oracles[oracle] = oracles.get(oracle, 0) + 1
        decomposition = result.record.get("decomposition_source", "none")
        if decomposition != "none":
            decompositions[decomposition] = \
                decompositions.get(decomposition, 0) + 1
        engine = result.record.get("engine_source", "none")
        if engine != "none":
            engines[engine] = engines.get(engine, 0) + 1
    return {"graphs": graphs, "oracles": oracles,
            "decompositions": decompositions, "engines": engines}


def _source_counts(executed: Sequence[CellResult]) -> Dict[str, Any]:
    """The manifest counter payload: provenance over executed cells."""
    return provenance_counts(executed)


def fault_counts(results: Sequence[CellResult]) -> Dict[str, Any]:
    """Fault-injection rollup over a set of cell results.

    Two families, shaped like the ``store_counters`` payload so the
    manifest stamp reuses :func:`_merge_counts` across resumed
    invocations: ``meters`` sums the injected-event counters out of the
    cell metrics, ``verdicts`` counts cells per fault verdict.  Empty
    (falsy) when no cell ran under a fault plan.
    """
    meters: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    for result in results:
        record = result.record
        if record is None or not record.get("fault_profile"):
            continue
        verdict = record.get("fault_verdict") or "unknown"
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        metrics = record.get("metrics") or {}
        for name in ("faults_dropped", "faults_duplicated", "nodes_crashed"):
            if metrics.get(name):
                meters[name] = meters.get(name, 0) + metrics[name]
    out: Dict[str, Any] = {}
    if verdicts:
        out["verdicts"] = verdicts
    if meters:
        out["meters"] = meters
    return out


def _merge_counts(base: Optional[Dict[str, Any]],
                  update: Dict[str, Any]) -> Dict[str, Any]:
    """Union of two ``_source_counts`` payloads (per-family key sums).

    A resumed run's manifest already carries the counters of the prior
    invocation(s); stamping only the current invocation's counts would
    overwrite them (the resume-accounting bug), so the engine merges
    instead: the stamped counters always cover every executed cell of
    every invocation.
    """
    merged: Dict[str, Any] = {}
    for payload in (base or {}, update):
        for family, counts in payload.items():
            rows = merged.setdefault(family, {})
            for source, count in counts.items():
                rows[source] = rows.get(source, 0) + count
    return merged


def sweep_params(names: Optional[Sequence[str]],
                 sizes: Optional[Sequence[int]],
                 seeds: Sequence[int],
                 faults: Optional[Sequence[str]] = None,
                 fault_seed: int = 0) -> Dict[str, Any]:
    """The manifest/resume identity of a sweep's parameters.

    Fault keys join the identity only for faulted sweeps, so every
    fault-free params payload (and params_key) is byte-stable across
    the introduction of the fault plane.
    """
    params: Dict[str, Any] = {
        "names": None if names is None else list(names),
        "sizes": None if sizes is None else list(sizes),
        "seeds": list(seeds)}
    if faults is not None:
        params["faults"] = list(faults)
        params["fault_seed"] = fault_seed
    return params


def run_sweep(names: Optional[Sequence[str]] = None, *,
              sizes: Optional[Sequence[int]] = None,
              seeds: Sequence[int] = (0,),
              faults: Optional[Sequence[str]] = None,
              fault_seed: int = 0,
              workers: int = 1,
              timeout: Optional[float] = None,
              retries: int = 0,
              store: Optional[RunStore] = None,
              fresh: bool = False,
              revision: Optional[str] = None,
              on_result: Optional[OnResult] = None,
              specs: Optional[Sequence[JobSpec]] = None,
              graph_store_dir: "Optional[str]" = None,
              graph_cache_size: Optional[int] = None,
              oracle_store_dir: "Optional[str]" = None,
              oracle_cache_size: Optional[int] = None,
              decomposition_store_dir: "Optional[str]" = None,
              decomposition_cache_size: Optional[int] = None,
              telemetry: bool = True,
              bench_history_dir: "Optional[str]" = None,
              profile_store_dir: "Optional[str]" = None,
              cprofile: Optional[bool] = None,
              kernels: Optional[bool] = None) -> SweepOutcome:
    """Run (or resume) one sweep; see the module docstring.

    ``fresh=True`` always starts a new run directory even when an
    incomplete same-params run exists.  ``specs`` overrides the planned
    work-list (the tests use it to inject fault-instrumented specs);
    names/sizes/seeds still name the sweep in the manifest.
    ``retries`` is the per-cell retry budget: timed-out/crashed cells
    are re-queued up to that many extra times before being recorded as
    failures (the cell record carries ``attempts``).  A cell that
    repeatedly kills its worker process is recorded as a *poisoned*
    error result after the budget and skipped by resumed runs (see
    :func:`repro.runner.executor.run_cells`).

    ``faults`` selects named fault profiles
    (:mod:`repro.congest.faults`): every matrix cell runs once per
    profile under a seeded fault plan derived from ``fault_seed``, and
    the manifest gains merged ``fault_counters`` (injected-event meters
    + verdict counts).  Same profiles + same ``fault_seed`` replay to
    byte-identical records.  Unknown profile names raise ``KeyError``
    before any worker is spawned.

    ``graph_store_dir`` / ``oracle_store_dir`` /
    ``decomposition_store_dir`` connect the on-disk artifact store
    families (:mod:`repro.store`) for this sweep, and
    ``graph_cache_size`` / ``oracle_cache_size`` /
    ``decomposition_cache_size`` re-size the per-worker LRUs; all six
    are process-wide settings (propagated to pool workers through the
    environment) and are left untouched when None.  The effective
    values are recorded in the run manifest either way, and the run's
    store hit/miss counters (graphs, oracles, and decompositions, from
    the executed cells) are stamped onto the manifest -- merged across
    invocations, so a resumed run's counters cover every invocation's
    executed cells, and stamped even when the invocation is interrupted
    mid-sweep.

    ``telemetry`` (persisted runs only) writes the cell-lifecycle
    timeline to ``telemetry.jsonl`` beside the records
    (:mod:`repro.telemetry`); events flush as they happen, so an
    interrupted sweep keeps its partial timeline and a resumed run
    extends it.  Telemetry never touches ``records.jsonl`` -- canonical
    cell records are byte-identical with it on or off.

    ``bench_history_dir`` connects the perf-trend plane: when the run
    *completes* (every planned cell recorded), one ``"sweep"`` record
    -- wall times, cell counts, store hit/miss counters -- is appended
    to the bench-history artifact family under that store root
    (:mod:`repro.store.bench_history`), and surfaced as
    ``outcome.history``.  ``None`` (the default) keeps programmatic
    sweeps hermetic; the CLI wires it to the artifact-store root.

    ``profile_store_dir`` turns on per-cell round profiling (``repro
    sweep --profile``): every executed cell records its per-round
    metric timeline and publishes it to the profiles artifact family
    under that store root, keyed by the full cell coordinates plus the
    code revision; the cell's record gains only the ``profile_source``
    provenance label (a NONDETERMINISTIC_FIELD), so canonical records
    are byte-identical profile on/off.  ``cprofile=True`` additionally
    wraps each cell body in ``cProfile`` and attaches the top hot
    functions to the result (``CellResult.hot``), aggregated by
    ``repro runs report``.  Both are process-wide settings (propagated
    to pool workers through the environment) and left untouched when
    None.

    ``kernels=True`` turns on the array-native round engines
    (:mod:`repro.kernels`): eligible cells run their whole metered
    execution as numpy sweeps instead of per-machine round stepping,
    and each record gains an ``engine_source`` provenance label (a
    NONDETERMINISTIC_FIELD -- the kernels replicate metering exactly,
    so canonical records are byte-identical kernels on or off).
    Process-wide (propagated to pool workers through the environment),
    left untouched when None.
    """
    from repro.runner import decomposition_cache, graph_cache, oracle_cache
    from repro.runner import profile_capture

    if graph_cache_size is not None:
        graph_cache.configure(graph_cache_size)
    if graph_store_dir is not None:
        graph_cache.configure_store(graph_store_dir)
    if oracle_cache_size is not None:
        oracle_cache.configure(oracle_cache_size)
    if oracle_store_dir is not None:
        oracle_cache.configure_store(oracle_store_dir)
    if decomposition_cache_size is not None:
        decomposition_cache.configure(decomposition_cache_size)
    if decomposition_store_dir is not None:
        decomposition_cache.configure_store(decomposition_store_dir)
    if profile_store_dir is not None:
        profile_capture.configure_profiles(profile_store_dir)
    if cprofile is not None:
        profile_capture.configure_cprofile(cprofile)
    if kernels is not None:
        from repro.kernels import config as kernels_config
        kernels_config.configure_kernels(kernels)

    if faults is not None:
        from repro.congest.faults import get_fault_profile

        faults = list(faults)
        for name in faults:  # validate before any worker is spawned
            get_fault_profile(name)

    specs = (build_specs(names, sizes=sizes, seeds=seeds,
                         faults=faults, fault_seed=fault_seed)
             if specs is None else list(specs))

    run: Optional[Run] = None
    resumed = False
    cached: Dict[str, CellResult] = {}
    if store is not None:
        params = sweep_params(names, sizes, seeds, faults, fault_seed)
        revision = git_revision() if revision is None else revision
        if not fresh:
            run = store.find_resumable(params, revision)
            resumed = run is not None
        if run is None:
            effective_store = graph_cache.effective_store()
            effective_oracles = oracle_cache.effective_store()
            effective_decompositions = decomposition_cache.effective_store()
            extra = {"graph_cache_size": graph_cache.effective_maxsize(),
                     "graph_store": (None if effective_store is None
                                     else str(effective_store.root)),
                     "oracle_cache_size":
                         oracle_cache.effective_maxsize(),
                     "oracle_store": (None if effective_oracles is None
                                      else str(effective_oracles.root)),
                     "decomposition_cache_size":
                         decomposition_cache.effective_maxsize(),
                     "decomposition_store":
                         (None if effective_decompositions is None
                          else str(effective_decompositions.root))}
            # Profiling knobs appear in the manifest only when on, so
            # unprofiled manifests keep their exact key set.
            profiles = profile_capture.effective_profile_store()
            if profiles is not None:
                extra["profile_store"] = str(profiles.root)
            if profile_capture.cprofile_enabled():
                extra["cprofile"] = True
            from repro.kernels import config as kernels_config
            if kernels_config.kernels_enabled():
                extra["kernels"] = True
            run = store.create_run(specs, params, revision=revision,
                                   extra=extra)
        else:
            planned = set(spec.key for spec in specs)
            cached = {result.key: result for result in run.load_results()
                      if result.key in planned}

    todo = [spec for spec in specs if spec.key not in cached]

    # The telemetry timeline rides beside the records of persisted
    # runs: strictly additive (its own file, flushed per event), so an
    # interrupted sweep keeps its partial timeline and the canonical
    # records stay byte-identical telemetry on or off.
    log = None
    if run is not None and telemetry:
        from repro.telemetry import RunTelemetry, telemetry_path

        log = RunTelemetry(telemetry_path(run.path))
        log.sweep_begin(run_id=run.run_id, revision=run.revision,
                        resumed=resumed, planned=len(specs),
                        restored=len(cached), todo=len(todo),
                        workers=workers, timeout=timeout, retries=retries,
                        faults=faults, fault_seed=(fault_seed
                                                   if faults else None))
        for spec in todo:
            log.cell_scheduled(spec)

    # Completed results also accumulate through the persist callback
    # (not just run_cells' return value) so the counter stamp below
    # covers whatever actually ran even when the invocation is
    # interrupted mid-sweep.
    completed: List[CellResult] = []

    def persist(result: CellResult) -> None:
        completed.append(result)
        if run is not None:
            run.append(result)
        if log is not None:
            log.cell_completed(result)
        if on_result is not None:
            on_result(result)

    interrupted = True
    try:
        executed = run_cells(todo, workers=workers, timeout=timeout,
                             retries=retries, on_result=persist,
                             on_start=None if log is None
                             else log.cell_started,
                             on_pool_crash=None if log is None
                             else log.pool_crashed)
        interrupted = False
    finally:
        if run is not None:
            # Cache-efficacy provenance: how many graphs / baselines /
            # decompositions were served from the LRU, the disk store,
            # or computed fresh -- merged with any prior invocations'
            # counters so a resumed run's manifest reflects the union
            # of all executed cells.
            stamp = {"store_counters": _merge_counts(
                run.manifest.get("store_counters"),
                _source_counts(completed))}
            # Fault counters: merged the same way, stamped only when
            # this run has any (this or a prior invocation), so clean
            # runs' manifests keep their pre-fault-plane key set.
            fault_update = fault_counts(completed)
            if fault_update or run.manifest.get("fault_counters"):
                stamp["fault_counters"] = _merge_counts(
                    run.manifest.get("fault_counters"), fault_update)
            run.update_manifest(stamp)
        if log is not None:
            log.sweep_end(executed=len(completed), restored=len(cached),
                          interrupted=interrupted)
            log.close()

    merged = dict(cached)
    for result in executed:
        merged[result.key] = result
    ordered = [merged[spec.key] for spec in specs if spec.key in merged]
    outcome = SweepOutcome(results=ordered, executed=len(executed),
                           skipped=len(cached), run=run, resumed=resumed,
                           restored_keys=set(cached))
    if (run is not None and bench_history_dir is not None
            and run.is_complete()):
        outcome.history = _append_sweep_history(outcome, bench_history_dir)
    return outcome


def _append_sweep_history(outcome: SweepOutcome,
                          bench_history_dir: str):
    """One perf-trend record per *completed* run (see bench_history).

    The record is named by the sweep's params key, so re-running the
    same matrix (any revision, same host class) extends one trend
    stream the rolling gate can compare along; the revision stamped is
    the run's own, not the current checkout's.
    """
    from repro.store.bench_history import KIND_SWEEP, BenchHistoryStore

    run = outcome.run
    summary = outcome.summary()
    name = f"sweep-{run.manifest['params_key'][:12]}"
    return BenchHistoryStore(bench_history_dir).append(
        KIND_SWEEP, name,
        timings={"wall_time": summary["wall_time"],
                 "wall_time_total": summary["wall_time_total"]},
        counters=run.manifest.get("store_counters") or {},
        revision=run.revision,
        extra={"run_id": run.run_id,
               "params": run.manifest.get("params"),
               "cells": summary["cells"],
               "executed": summary["executed"],
               "skipped": summary["skipped"],
               "passed": summary["passed"],
               "failed": summary["failed"]})
