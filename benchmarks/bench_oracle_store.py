"""Regenerate BENCH_oracle_store.json: cached differential baselines.

Two measurements over the oracle cache chain of
``repro.runner.oracle_cache`` (in-process LRU -> on-disk oracle store
-> compute-and-publish):

* **per-oracle serving cost** -- producing one cell's baseline value
  for the registered oracle shapes (the shared ``unweighted-apsp``
  matrix, the ``weighted-apsp`` matrix, ``matching-size``, and the
  exhaustive ``ldc-reference`` realization): cold sequential compute
  vs. store load vs. in-process LRU hit.  The ratios vary by design --
  the LDC reference (per-cluster strong-diameter checks) is hundreds
  of times cheaper to load than to recompute, while Hopcroft-Karp at
  tier sizes is cheap enough that the load overhead is visible;
* **sweep baselines, cold vs. warm store** -- the whole per-cell
  baseline bill of a fresh sweep invocation: against an empty store
  (every resolution computes and publishes) vs. a warmed one (every
  resolution loads).  This is the acceptance headline (>= 2x): it is
  exactly what every new pool worker, repeated sweep, and later
  revision pays for its ground truth.

Run from the repo root (writes next to the other BENCH_*.json files)::

    PYTHONPATH=src python benchmarks/bench_oracle_store.py

or equivalently ``repro bench oracle-store`` (``--smoke`` shrinks the
workloads for CI).  The measurement itself lives in
:mod:`repro.bench`, so this script and the CLI always agree.  Running
under pytest executes the same measurement once and sanity-checks the
headline speedups.
"""

from __future__ import annotations

import pathlib


def run(out_dir=None):
    from repro.bench import run_benchmark, write_report

    report = run_benchmark("oracle-store")
    path = write_report(report, out_dir)
    for key, ratio in sorted(report.speedups.items()):
        print(f"{key}: {ratio:.2f}x")
    print(f"wrote {path}")
    return report


def test_oracle_store_bench(benchmark):
    """Re-measure and gate the ratios; does NOT rewrite the checked-in
    JSON (regenerate that with ``repro bench oracle-store`` or by
    running this file as a script)."""
    from conftest import run_once

    from repro.analysis import record_extra_info
    from repro.bench import run_benchmark

    report = run_once(benchmark, lambda: run_benchmark("oracle-store"))
    # The acceptance headline: a warm store must eliminate >= 2x of a
    # sweep's per-cell baseline computation vs. a cold one.  The
    # distance-matrix oracles must individually beat recomputation, and
    # the expensive LDC reference must beat it by a wide margin; an LRU
    # hit stays the fastest tier of the chain.
    assert report.speedups["sweep_baselines_warm_vs_cold"] >= 2.0, \
        report.speedups
    assert report.speedups["load_vs_compute.dense-gnp.unweighted-apsp"] \
        > 1.0, report.speedups
    assert report.speedups["load_vs_compute.grid-weighted.weighted-apsp"] \
        > 1.0, report.speedups
    assert report.speedups["load_vs_compute.dense-gnp.ldc-reference"] \
        > 10.0, report.speedups
    record_extra_info(benchmark, "", **{
        k.replace(".", "_"): round(v, 2)
        for k, v in report.speedups.items()})


if __name__ == "__main__":
    run(pathlib.Path(__file__).resolve().parent.parent)
