"""Shared helpers for the experiment benchmarks (E1-E12).

Each benchmark runs its experiment once under ``benchmark.pedantic``
(the interesting outputs are message/round counts, which are
deterministic given the seed -- wall time is incidental), prints the
table recorded in EXPERIMENTS.md, and attaches the headline numbers to
the pytest-benchmark report via ``extra_info``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
