"""The array-native kernel plane (src/repro/kernels/).

The contract under test is *exact metering replication*: for every
eligible binding, a cell executed on a kernel engine produces a
canonical differential record byte-identical to the vectorized
per-machine path, with identical Metrics down to the per-edge
congestion multiset -- kernels are a perf tier, never a semantics tier.
Everything ineligible (unlisted bindings, active fault plans, attached
profilers, plan builders that decline) must fall through to the
vectorized path and say why in ``engine_source``.
"""

import json

import pytest

from repro.congest.machine import run_machines
from repro.core.bfs_collections import _message_budget, shared_delays
from repro.core.weighted_apsp import weighted_apsp
from repro.graphs import gnp_streaming, uniform_weights
from repro.kernels import REGISTRY, jit, wavefront
from repro.kernels import config as kernels_config
from repro.kernels import relaxation
from repro.primitives.bfs import BFSCollectionMachine
from repro.runner.engine import provenance_counts, run_sweep
from repro.scenarios import get_scenario
from repro.testing import run_differential

# Eligible (scenario, algorithm) cells spanning all three registry
# entries and >= 6 scenarios: unweighted BFS/APSP on sparse,
# high-diameter, dense, and random shapes; weighted APSP over integer,
# Johnson-reweighted (negative-safe), per-direction asymmetric, and
# heavy-tailed *float* weights.
ELIGIBLE_CELLS = [
    ("path", "apsp-unweighted"),
    ("path", "bfs-collection"),
    ("cycle", "apsp-unweighted"),
    ("grid", "bfs-collection"),
    ("random-tree", "apsp-unweighted"),
    ("dense-gnp", "bfs-collection"),
    ("expander-regular", "apsp-unweighted"),
    ("huge-sparse-gnp", "apsp-unweighted"),
    ("grid-weighted", "apsp-weighted"),
    ("dense-gnp-negative", "apsp-weighted"),
    ("dense-gnp-asymmetric", "apsp-weighted"),
    ("heavy-tail-gnp", "apsp-weighted"),
]


def _canonical(record):
    return json.dumps(record.canonical_dict(), sort_keys=True)


def _kernel_vs_vectorized(name, algorithm, size=None, seed=0):
    kernels_config.reset()
    off = run_differential(name, algorithm, size=size, seed=seed)
    assert off.engine_source == "none"
    assert "engine_source" not in off.as_dict()
    kernels_config.configure_kernels(True)
    on = run_differential(name, algorithm, size=size, seed=seed)
    return off, on


# ---------------------------------------------------------------------------
# Byte-identity of canonical records, kernels on vs off
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,algorithm", ELIGIBLE_CELLS,
                         ids=[f"{n}-{a}" for n, a in ELIGIBLE_CELLS])
def test_eligible_cell_is_byte_identical_and_kernel_served(name, algorithm):
    off, on = _kernel_vs_vectorized(name, algorithm)
    assert on.engine_source.startswith("kernel:"), on.engine_source
    assert on.engine_source == f"kernel:{REGISTRY[algorithm]}"
    assert _canonical(off) == _canonical(on)
    assert off.metrics == on.metrics  # exact, not approximate
    assert on.ok, on.failure_message()


@pytest.mark.parametrize("name,algorithm", ELIGIBLE_CELLS[:4],
                         ids=[f"{n}-{a}" for n, a in ELIGIBLE_CELLS[:4]])
def test_byte_identity_holds_across_seeds(name, algorithm):
    for seed in (1, 2):
        off, on = _kernel_vs_vectorized(name, algorithm, seed=seed)
        assert _canonical(off) == _canonical(on)
        assert on.engine_source.startswith("kernel:")


@pytest.mark.slow
@pytest.mark.parametrize("name,algorithm", ELIGIBLE_CELLS,
                         ids=[f"{n}-{a}" for n, a in ELIGIBLE_CELLS])
def test_byte_identity_at_requested_size(name, algorithm, scenario_size):
    """Tier 2: the same identity at ``--scenario-size N`` (e.g. 32)."""
    off, on = _kernel_vs_vectorized(name, algorithm, size=scenario_size)
    assert _canonical(off) == _canonical(on)
    assert on.engine_source.startswith("kernel:")


# ---------------------------------------------------------------------------
# Engine-level exactness: full Metrics equality, not just the record
# ---------------------------------------------------------------------------

def test_direct_engine_replicates_run_machines_exactly():
    graph = get_scenario("sparse-gnp").graph(24)
    roots = {j: j for j in range(graph.n)}
    delays = shared_delays(list(range(graph.n)), graph.n, 3)
    budget = _message_budget(graph.n)
    base = run_machines(
        graph,
        lambda info: BFSCollectionMachine(info, roots=roots, delays=delays),
        word_limit=budget, seed=5)
    fast = wavefront.direct_execution(graph, roots, delays,
                                      word_limit=budget)
    assert fast.outputs == base.outputs
    assert fast.metrics.as_dict() == base.metrics.as_dict()
    assert dict(fast.metrics.edge_congestion) \
        == dict(base.metrics.edge_congestion)
    assert dict(fast.metrics.message_sizes) \
        == dict(base.metrics.message_sizes)


def test_weighted_apsp_metrics_identical_kernels_on_and_off():
    graph = uniform_weights(get_scenario("grid-weighted").graph(12),
                            w_max=8, seed=9)
    kernels_config.reset()
    off = weighted_apsp(graph, seed=2)
    kernels_config.configure_kernels(True)
    on = weighted_apsp(graph, seed=2)
    assert kernels_config.consume_note() == "kernel:bellman-ford"
    assert on.dist == off.dist
    assert on.parents == off.parents
    assert on.metrics.as_dict() == off.metrics.as_dict()
    assert dict(on.metrics.edge_congestion) \
        == dict(off.metrics.edge_congestion)
    assert on.detail == off.detail


# ---------------------------------------------------------------------------
# Fallbacks: everything ineligible goes vectorized, with the reason
# ---------------------------------------------------------------------------

def test_unlisted_binding_reports_ineligible():
    kernels_config.configure_kernels(True)
    record = run_differential("bipartite-balanced", "matching")
    assert record.engine_source == "vectorized:ineligible"
    assert record.ok, record.failure_message()


def test_faulted_cell_falls_back_to_vectorized():
    kernels_config.configure_kernels(True)
    record = run_differential("random-tree", "apsp-unweighted",
                              faults="lossy-light", fault_seed=7)
    assert record.engine_source == "vectorized:faults"


def test_active_profiler_falls_back_to_vectorized():
    from repro.congest.profile import RoundProfiler, profile_context

    kernels_config.configure_kernels(True)
    with profile_context(RoundProfiler()):
        assert not kernels_config.engine_ready()
    assert kernels_config.cell_engine_source("apsp-unweighted") \
        == "vectorized:profile"


def test_oversized_int_weights_decline_the_plan():
    graph = uniform_weights(get_scenario("grid-weighted").graph(12),
                            w_max=8, seed=9)
    huge = {key: w * (2 ** 60) for key, w in graph.weights.items()}
    graph = graph.reweighted(huge)
    delays = {j: 1 for j in range(graph.n)}
    assert relaxation.bcongest_plan(graph, delays) is None
    # Through the driver: eligible binding, no kernel note -> fallback.
    kernels_config.configure_kernels(True)
    kernels_config.clear_note()
    weighted_apsp(graph, seed=0)
    assert kernels_config.cell_engine_source("apsp-weighted") \
        == "vectorized:fallback"


def test_disabled_plane_reports_none_and_omits_the_field():
    kernels_config.reset()
    record = run_differential("path", "apsp-unweighted")
    assert record.engine_source == "none"
    assert "engine_source" not in record.as_dict()


def test_jit_degrades_silently_to_pure_numpy():
    import numpy as np

    graph = get_scenario("grid").graph(16)
    dist = wavefront.bfs_distances(graph, [0])
    assert dist.shape == (1, graph.n) and int(dist[0, 0]) == 0
    if not jit.available():
        out = np.empty(graph.n, dtype=np.int64)
        assert jit.bfs_levels(graph._indptr, graph._indices, 0,
                              out) is None


# ---------------------------------------------------------------------------
# Sweep integration: summary counts, nondeterministic-field handling
# ---------------------------------------------------------------------------

def test_sweep_summary_counts_engine_sources():
    kernels_config.configure_kernels(True)
    outcome = run_sweep(["path", "cycle"], seeds=(0,))
    summary = outcome.summary()
    counts = summary["engine_sources"]
    assert sum(counts.values()) == len(
        [r for r in outcome.results
         if r.spec.algorithm in REGISTRY])
    assert all(source.startswith("kernel:") for source in counts)
    # The shared helper drops "none" rows, mirroring oracle sources.
    assert "none" not in provenance_counts(outcome.results)["engines"]


def test_sweep_canonical_records_identical_kernels_on_and_off():
    kernels_config.reset()
    off = run_sweep(["path", "cycle"], seeds=(0,))
    kernels_config.configure_kernels(True)
    on = run_sweep(["path", "cycle"], seeds=(0,))
    assert [r.canonical_record() for r in off.results] \
        == [r.canonical_record() for r in on.results]
    assert off.summary()["engine_sources"] == {}


# ---------------------------------------------------------------------------
# Kernel-scale (tier 2): n = 10^5 under the streaming builder
# ---------------------------------------------------------------------------

def _reference_bfs(graph, root):
    from collections import deque

    dist = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


@pytest.mark.slow
@pytest.mark.parametrize("name", ["huge-sparse-gnp", "huge-grid"])
def test_kernel_scale_scenarios_build_and_solve(name):
    scenario = get_scenario(name)
    graph = scenario.graph(100000)
    assert graph.is_connected() and graph.n >= 90000
    roots = [0, graph.n // 2]
    dist = wavefront.bfs_distances(graph, roots)
    for row, root in zip(dist, roots):
        reference = _reference_bfs(graph, root)
        assert len(reference) == graph.n  # connected
        assert all(int(row[v]) == d for v, d in reference.items())


@pytest.mark.slow
def test_direct_engine_runs_at_kernel_scale():
    graph = get_scenario("huge-sparse-gnp").graph(100000)
    root_list = [0, 1, 2, 3]
    roots = {j: j for j in root_list}
    delays = shared_delays(root_list, len(root_list), 0)
    execution = wavefront.direct_execution(
        graph, roots, delays, word_limit=_message_budget(graph.n))
    assert execution.metrics.messages > graph.n
    assert execution.metrics.rounds > 0
    reference = _reference_bfs(graph, 0)
    for v in (1, graph.n // 2, graph.n - 1):
        d, _parent = execution.outputs[v][0]
        assert d == reference[v]


# ---------------------------------------------------------------------------
# The streaming G(n, p) sampler
# ---------------------------------------------------------------------------

def test_gnp_streaming_is_deterministic_and_connected():
    a = gnp_streaming(200, 0.05, seed=4)
    b = gnp_streaming(200, 0.05, seed=4)
    assert a.adj == b.adj
    assert a.is_connected()
    assert a.adj != gnp_streaming(200, 0.05, seed=5).adj


def test_gnp_streaming_edge_count_tracks_expectation():
    n, p = 400, 0.03
    expected = p * n * (n - 1) / 2
    ms = [gnp_streaming(n, p, seed=s).m for s in range(8)]
    mean = sum(ms) / len(ms)
    assert 0.7 * expected < mean < 1.4 * expected


def test_gnp_streaming_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        gnp_streaming(1, 0.5)
    with pytest.raises(ValueError):
        gnp_streaming(10, 0.0)
    with pytest.raises(ValueError):
        gnp_streaming(10, 1.0)
