"""Reusable verification harnesses (differential oracles over scenarios).

Import surface for tests, benchmarks, and the CLI:

* :func:`run_differential` -- one scenario x algorithm cell;
* :func:`run_scenario` -- one scenario under all of its bindings;
* :func:`sweep` -- the whole matrix (optionally restricted), routed
  through the :mod:`repro.runner` engine (``workers>1`` for a pool);
* :func:`summarize` -- aggregate verdicts for reporting;
* :func:`record_from_dict` -- rebuild a record from stored JSON.
"""

from repro.testing.differential import (
    CORRECT_UNDER_FAULTS,
    DEGRADED,
    DIVERGED,
    DifferentialRecord,
    record_from_dict,
    run_differential,
    run_scenario,
    summarize,
    sweep,
)

__all__ = [
    "CORRECT_UNDER_FAULTS", "DEGRADED", "DIVERGED",
    "DifferentialRecord", "record_from_dict", "run_differential",
    "run_scenario", "summarize", "sweep",
]
